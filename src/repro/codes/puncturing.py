"""Punctured code wrapper.

Puncturing removes selected codeword positions from transmission; the
receiver re-inserts them as erasures (LLR = 0) before decoding.  The AR4JA
deep-space LDPC codes — the family the paper names as future work for its
generic architecture — rely on a punctured high-degree variable node, so the
wrapper lives alongside :class:`~repro.codes.shortening.ShortenedCode` (which
handles the complementary operation, virtual fill).
"""

from __future__ import annotations

import numpy as np

__all__ = ["PuncturedCode"]


class PuncturedCode:
    """A code whose selected positions are not transmitted (punctured).

    Parameters
    ----------
    base_code:
        The underlying code (anything exposing ``block_length`` and
        ``dimension``).
    punctured_positions:
        Base-codeword positions that are never transmitted.
    """

    def __init__(self, base_code, punctured_positions):
        positions = np.unique(np.asarray(punctured_positions, dtype=np.int64))
        n = base_code.block_length
        if positions.size and (positions.min() < 0 or positions.max() >= n):
            raise ValueError("punctured positions out of range")
        if positions.size >= n:
            raise ValueError("cannot puncture every position")
        self._base = base_code
        self._punctured = positions
        mask = np.ones(n, dtype=bool)
        mask[positions] = False
        self._transmitted = np.nonzero(mask)[0]

    # ------------------------------------------------------------------ #
    @property
    def base_code(self):
        """The underlying unpunctured code."""
        return self._base

    @property
    def num_punctured(self) -> int:
        """Number of punctured (untransmitted) positions."""
        return int(self._punctured.size)

    @property
    def transmitted_length(self) -> int:
        """Number of transmitted bits per frame."""
        return self._base.block_length - self.num_punctured

    @property
    def dimension(self) -> int:
        """Information bits per frame (unchanged by puncturing)."""
        return self._base.dimension

    @property
    def rate(self) -> float:
        """Rate of the punctured code ``k / (n - punctured)``."""
        return self.dimension / self.transmitted_length

    def punctured_positions(self) -> np.ndarray:
        """Base-codeword positions that are not transmitted."""
        return self._punctured.copy()

    def transmitted_positions(self) -> np.ndarray:
        """Base-codeword positions that are transmitted, in order."""
        return self._transmitted.copy()

    # ------------------------------------------------------------------ #
    def extract_transmitted(self, base_word: np.ndarray) -> np.ndarray:
        """Drop the punctured positions from a base-length word."""
        arr = np.asarray(base_word)
        if arr.shape[-1] != self._base.block_length:
            raise ValueError(
                f"expected {self._base.block_length} base bits, got {arr.shape[-1]}"
            )
        return arr[..., self._transmitted]

    def base_llrs_from_transmitted_llrs(self, transmitted_llrs: np.ndarray) -> np.ndarray:
        """Re-insert punctured positions as erasures (LLR = 0) for the decoder."""
        llrs = np.asarray(transmitted_llrs, dtype=np.float64)
        if llrs.shape[-1] != self.transmitted_length:
            raise ValueError(
                f"expected {self.transmitted_length} transmitted LLRs, got {llrs.shape[-1]}"
            )
        base = np.zeros(llrs.shape[:-1] + (self._base.block_length,), dtype=np.float64)
        base[..., self._transmitted] = llrs
        return base

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PuncturedCode(n_tx={self.transmitted_length}, "
            f"punctured={self.num_punctured}, rate={self.rate:.3f})"
        )
