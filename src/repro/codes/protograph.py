"""Protograph (base matrix) utilities.

A protograph is the small template graph that a QC-LDPC code lifts: entry
``B[j, k]`` gives the number of parallel edges between proto-check ``j`` and
proto-bit ``k``, and the lifting replaces each edge with a circulant of the
chosen size.  The CCSDS C2 protograph is the all-2 matrix of shape 2 x 16.
"""

from __future__ import annotations

import numpy as np

from repro.codes.qc import CirculantSpec
from repro.utils.rng import ensure_rng

__all__ = ["Protograph"]


class Protograph:
    """Base matrix of a protograph-based LDPC code."""

    def __init__(self, base_matrix):
        base = np.asarray(base_matrix, dtype=np.int64)
        if base.ndim != 2:
            raise ValueError("base matrix must be 2-D")
        if (base < 0).any():
            raise ValueError("base matrix entries must be non-negative edge counts")
        self._base = base

    # ------------------------------------------------------------------ #
    @classmethod
    def ccsds_c2(cls) -> "Protograph":
        """The 2 x 16 all-2 protograph of the CCSDS near-earth code."""
        return cls(np.full((2, 16), 2, dtype=np.int64))

    @property
    def base_matrix(self) -> np.ndarray:
        """The base matrix (edge multiplicities)."""
        return self._base.copy()

    @property
    def num_check_types(self) -> int:
        """Number of proto check nodes (block rows after lifting)."""
        return self._base.shape[0]

    @property
    def num_bit_types(self) -> int:
        """Number of proto bit nodes (block columns after lifting)."""
        return self._base.shape[1]

    def check_degrees(self) -> np.ndarray:
        """Degree of each proto check node."""
        return self._base.sum(axis=1)

    def bit_degrees(self) -> np.ndarray:
        """Degree of each proto bit node."""
        return self._base.sum(axis=0)

    def design_rate(self) -> float:
        """Design rate ``1 - m_proto / n_proto`` of the lifted code."""
        m, n = self._base.shape
        return 1.0 - m / n

    # ------------------------------------------------------------------ #
    def lift_random(self, circulant_size: int, rng=None) -> CirculantSpec:
        """Lift the protograph with uniformly random circulant offsets.

        Each base-matrix entry ``w`` becomes a circulant with ``w`` distinct
        random first-row positions.  This produces a structurally valid code
        but makes no attempt to avoid short cycles; use
        :func:`repro.codes.construction.build_ccsds_like_spec` for the
        girth-aware construction.
        """
        rng = ensure_rng(rng)
        if circulant_size <= 0:
            raise ValueError("circulant_size must be positive")
        rows = []
        for j in range(self.num_check_types):
            row = []
            for k in range(self.num_bit_types):
                weight = int(self._base[j, k])
                if weight > circulant_size:
                    raise ValueError(
                        "circulant size too small for the requested block weight"
                    )
                positions = tuple(
                    sorted(
                        int(p)
                        for p in rng.choice(circulant_size, size=weight, replace=False)
                    )
                )
                row.append(positions)
            rows.append(tuple(row))
        return CirculantSpec(circulant_size, tuple(rows))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Protograph(shape={self._base.shape})"
