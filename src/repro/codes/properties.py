"""Code-property analysis for small codes.

These routines enumerate codewords, so they are only practical for codes
with a handful of information bits; they exist to validate the construction
and encoding machinery in tests (e.g. the minimum distance of a tiny QC code
or a hand-built parity-check matrix).
"""

from __future__ import annotations

from itertools import product

import numpy as np

from repro.gf2.dense import gf2_matvec, gf2_null_space

__all__ = [
    "enumerate_codewords",
    "minimum_distance",
    "weight_distribution",
]

_MAX_ENUMERATED_DIMENSION = 20


def enumerate_codewords(parity_check_dense: np.ndarray) -> np.ndarray:
    """All codewords of the code defined by a dense parity-check matrix.

    Raises
    ------
    ValueError
        If the code dimension exceeds 20 (more than ~1M codewords).
    """
    basis = gf2_null_space(parity_check_dense)
    k = basis.shape[0]
    if k > _MAX_ENUMERATED_DIMENSION:
        raise ValueError(
            f"code dimension {k} too large to enumerate (max {_MAX_ENUMERATED_DIMENSION})"
        )
    n = parity_check_dense.shape[1]
    codewords = np.zeros((2**k, n), dtype=np.uint8)
    for index, coefficients in enumerate(product((0, 1), repeat=k)):
        word = np.zeros(n, dtype=np.uint8)
        for coeff, row in zip(coefficients, basis):
            if coeff:
                word ^= row
        codewords[index] = word
    return codewords


def minimum_distance(parity_check_dense: np.ndarray) -> int:
    """Exact minimum distance by codeword enumeration (small codes only)."""
    codewords = enumerate_codewords(parity_check_dense)
    weights = codewords.sum(axis=1)
    nonzero = weights[weights > 0]
    if nonzero.size == 0:
        return 0
    return int(nonzero.min())


def weight_distribution(parity_check_dense: np.ndarray) -> dict[int, int]:
    """Weight enumerator ``{weight: count}`` by enumeration (small codes only)."""
    codewords = enumerate_codewords(parity_check_dense)
    weights, counts = np.unique(codewords.sum(axis=1), return_counts=True)
    return {int(w): int(c) for w, c in zip(weights, counts)}
