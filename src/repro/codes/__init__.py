"""LDPC code representations and the CCSDS C2 code construction.

The central objects are:

* :class:`~repro.codes.parity_check.ParityCheckMatrix` — a sparse parity-check
  matrix with degree profiles and syndrome checks,
* :class:`~repro.codes.qc.QCLDPCCode` — a Quasi-Cyclic code described by a
  block array of circulants,
* :func:`~repro.codes.ccsds_c2.build_ccsds_c2_code` — the (8176, 7154) CCSDS
  near-earth code (2 x 16 array of 511 x 511 weight-2 circulants),
* :class:`~repro.codes.shortening.ShortenedCode` — the (8160, 7136)
  transmitted frame with virtual fill, and
* :class:`~repro.codes.tanner.TannerGraph` — the bipartite graph view with
  girth and degree analysis.
"""

from repro.codes.ccsds_c2 import (
    CCSDS_C2_CIRCULANT_SIZE,
    CCSDS_C2_COLUMN_BLOCKS,
    CCSDS_C2_ROW_BLOCKS,
    build_ccsds_c2_code,
    build_ccsds_c2_spec,
    build_scaled_ccsds_code,
)
from repro.codes.construction import (
    build_ccsds_like_spec,
    build_protograph_spec,
    build_random_regular_spec,
)
from repro.codes.deepspace import (
    AR4JA_RATES,
    ar4ja_like_protograph,
    build_deepspace_code,
    deepspace_architecture,
)
from repro.codes.parity_check import ParityCheckMatrix
from repro.codes.protograph import Protograph
from repro.codes.puncturing import PuncturedCode
from repro.codes.qc import CirculantSpec, QCLDPCCode
from repro.codes.shortening import ShortenedCode
from repro.codes.tanner import TannerGraph

__all__ = [
    "ParityCheckMatrix",
    "TannerGraph",
    "CirculantSpec",
    "QCLDPCCode",
    "Protograph",
    "ShortenedCode",
    "PuncturedCode",
    "build_ccsds_c2_code",
    "build_ccsds_c2_spec",
    "build_scaled_ccsds_code",
    "build_ccsds_like_spec",
    "build_protograph_spec",
    "build_random_regular_spec",
    "AR4JA_RATES",
    "ar4ja_like_protograph",
    "build_deepspace_code",
    "deepspace_architecture",
    "CCSDS_C2_CIRCULANT_SIZE",
    "CCSDS_C2_ROW_BLOCKS",
    "CCSDS_C2_COLUMN_BLOCKS",
]
