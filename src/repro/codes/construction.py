"""Girth-aware construction of Quasi-Cyclic circulant specifications.

The official CCSDS 131.1-O-2 standard fixes the exact first-row positions of
the 32 circulants of the C2 code.  Those tables are not redistributed here;
instead :func:`build_ccsds_like_spec` builds a code with the *same structure*
(2 x 16 array of 511 x 511 circulants, block weight 2, total column weight 4,
row weight 32) and girth >= 6, using a deterministic greedy search over
circulant offsets.  The algebraic 4-cycle condition used below is the
standard one for QC-LDPC codes: a length-4 cycle exists exactly when two
(block-row, block-column) difference sets collide.

If the official tables are available they can be loaded with
:mod:`repro.io.circulant_table` and every downstream component (encoder,
decoders, architecture model) works unchanged.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.codes.qc import CirculantSpec
from repro.utils.rng import ensure_rng

__all__ = [
    "build_ccsds_like_spec",
    "build_protograph_spec",
    "build_random_regular_spec",
    "spec_has_four_cycle",
    "count_four_cycles",
]


def _pair_differences(positions_a, positions_b, size: int, *, same_block: bool) -> list[int]:
    """All differences ``(p - q) mod size`` between two position sets.

    When ``same_block`` is true the diagonal pairs ``p == q`` are skipped
    (they correspond to the same bit / same check, not a cycle).
    """
    diffs = []
    for p in positions_a:
        for q in positions_b:
            if same_block and p == q:
                continue
            diffs.append((p - q) % size)
    return diffs


def spec_has_four_cycle(spec: CirculantSpec) -> bool:
    """Whether the expanded Tanner graph of ``spec`` contains a 4-cycle.

    Works purely on the circulant offsets (no graph expansion) using the
    difference-set condition, so it is exact and fast even for the full
    511-circulant code.
    """
    return count_four_cycles(spec, stop_at_first=True) > 0


def count_four_cycles(spec: CirculantSpec, *, stop_at_first: bool = False) -> int:
    """Count the block-level 4-cycle conditions violated by ``spec``.

    The count is the number of colliding difference pairs at the block level
    (each corresponds to ``circulant_size`` actual 4-cycles in the expanded
    graph); it is intended as a construction-quality metric, not an exact
    cycle enumeration.
    """
    size = spec.circulant_size
    violations = 0

    # Condition A: within one block row, a repeated difference for a column
    # pair (two distinct circulant-position pairs giving the same shift).
    for j in range(spec.row_blocks):
        for k1 in range(spec.col_blocks):
            for k2 in range(k1, spec.col_blocks):
                same = k1 == k2
                diffs = _pair_differences(
                    spec.block_positions[j][k1],
                    spec.block_positions[j][k2],
                    size,
                    same_block=same,
                )
                repeats = len(diffs) - len(set(diffs))
                violations += repeats
                if stop_at_first and violations:
                    return violations

    # Condition B: across two block rows, the difference sets of the same
    # column pair intersect.
    for j1, j2 in combinations(range(spec.row_blocks), 2):
        for k1 in range(spec.col_blocks):
            for k2 in range(k1, spec.col_blocks):
                same = k1 == k2
                diffs1 = set(
                    _pair_differences(
                        spec.block_positions[j1][k1],
                        spec.block_positions[j1][k2],
                        size,
                        same_block=same,
                    )
                )
                diffs2 = set(
                    _pair_differences(
                        spec.block_positions[j2][k1],
                        spec.block_positions[j2][k2],
                        size,
                        same_block=same,
                    )
                )
                violations += len(diffs1 & diffs2)
                if stop_at_first and violations:
                    return violations
    return violations


def _column_violations(
    new_column: list[tuple[int, ...]],
    placed_columns: list[list[tuple[int, ...]]],
    size: int,
) -> int:
    """Number of block-level 4-cycle conditions introduced by ``new_column``.

    ``new_column[j]`` is the position tuple for block row ``j``;
    ``placed_columns`` holds the previously accepted columns.  Zero means the
    column can be added without creating any 4-cycle.
    """
    row_blocks = len(new_column)
    violations = 0

    # Within the new column: differences of distinct rows must not collide,
    # and each row's own difference set must have no repeats.
    per_row_diffs = []
    for j in range(row_blocks):
        diffs = _pair_differences(new_column[j], new_column[j], size, same_block=True)
        violations += len(diffs) - len(set(diffs))
        per_row_diffs.append(set(diffs))
    for j1, j2 in combinations(range(row_blocks), 2):
        violations += len(per_row_diffs[j1] & per_row_diffs[j2])

    # Against every previously placed column.
    for other in placed_columns:
        cross_sets = []
        for j in range(row_blocks):
            diffs = _pair_differences(new_column[j], other[j], size, same_block=False)
            violations += len(diffs) - len(set(diffs))
            cross_sets.append(set(diffs))
        for j1, j2 in combinations(range(row_blocks), 2):
            violations += len(cross_sets[j1] & cross_sets[j2])
    return violations


def build_ccsds_like_spec(
    circulant_size: int = 511,
    row_blocks: int = 2,
    col_blocks: int = 16,
    block_weight: int = 2,
    *,
    rng=None,
    max_attempts_per_column: int = 500,
    require_girth_6: bool = False,
) -> CirculantSpec:
    """Build a QC circulant specification with the CCSDS C2 structure.

    Columns are placed one at a time; for each column, candidate circulant
    offsets are drawn uniformly at random and the candidate introducing the
    fewest 4-cycles against the already-placed columns is kept (stopping
    early when a 4-cycle-free candidate is found).  With the real CCSDS
    parameters (511-circulants, 16 block columns, weight 2) a 4-cycle-free —
    i.e. girth >= 6 — code is always found within a handful of attempts per
    column; for heavily scaled-down circulant sizes (used by fast tests) a
    best-effort code with a few short cycles may be returned instead, unless
    ``require_girth_6`` is set.

    Parameters
    ----------
    circulant_size, row_blocks, col_blocks, block_weight:
        Structure of the block array; the defaults are the CCSDS C2 values.
    rng:
        Seed or generator; the same seed always produces the same code.
    max_attempts_per_column:
        Rejection-sampling budget per block column.
    require_girth_6:
        When ``True``, raise instead of returning a code containing 4-cycles.

    Raises
    ------
    RuntimeError
        If ``require_girth_6`` is set and a 4-cycle-free column cannot be
        found within the attempt budget.
    """
    if block_weight < 1:
        raise ValueError("block_weight must be >= 1")
    if block_weight > circulant_size:
        raise ValueError("block_weight cannot exceed circulant_size")
    rng = ensure_rng(rng)
    placed: list[list[tuple[int, ...]]] = []
    for column_index in range(col_blocks):
        best_candidate = None
        best_violations = None
        for _ in range(max_attempts_per_column):
            candidate = [
                tuple(
                    sorted(
                        int(p)
                        for p in rng.choice(circulant_size, size=block_weight, replace=False)
                    )
                )
                for _ in range(row_blocks)
            ]
            violations = _column_violations(candidate, placed, circulant_size)
            if best_violations is None or violations < best_violations:
                best_candidate = candidate
                best_violations = violations
            if violations == 0:
                break
        if best_violations and require_girth_6:
            raise RuntimeError(
                f"could not place block column {column_index} without 4-cycles; "
                f"increase circulant_size or lower block_weight"
            )
        placed.append(best_candidate)

    block_rows = tuple(
        tuple(placed[k][j] for k in range(col_blocks)) for j in range(row_blocks)
    )
    return CirculantSpec(circulant_size, block_rows)


def build_protograph_spec(
    base_matrix,
    circulant_size: int,
    *,
    rng=None,
    max_attempts_per_column: int = 500,
    require_girth_6: bool = False,
) -> CirculantSpec:
    """Girth-aware lifting of an arbitrary protograph (base matrix).

    Generalizes :func:`build_ccsds_like_spec` to protographs whose entries
    (edge multiplicities) vary from block to block — e.g. the AR4JA-style
    deep-space protographs the paper names as future work.  Columns are
    placed greedily, keeping the candidate with the fewest introduced
    4-cycles.

    Parameters
    ----------
    base_matrix:
        2-D array of non-negative edge multiplicities, shape
        ``(row_blocks, col_blocks)``.
    circulant_size:
        Lifting factor.
    rng, max_attempts_per_column, require_girth_6:
        As in :func:`build_ccsds_like_spec`.
    """
    base = np.asarray(base_matrix, dtype=np.int64)
    if base.ndim != 2 or (base < 0).any():
        raise ValueError("base_matrix must be 2-D with non-negative entries")
    if int(base.max(initial=0)) > circulant_size:
        raise ValueError("circulant_size too small for the largest base-matrix entry")
    rng = ensure_rng(rng)
    row_blocks, col_blocks = base.shape
    placed: list[list[tuple[int, ...]]] = []
    for column_index in range(col_blocks):
        weights = base[:, column_index]
        best_candidate = None
        best_violations = None
        for _ in range(max_attempts_per_column):
            candidate = []
            for j in range(row_blocks):
                weight = int(weights[j])
                if weight == 0:
                    candidate.append(())
                else:
                    candidate.append(
                        tuple(
                            sorted(
                                int(p)
                                for p in rng.choice(circulant_size, size=weight, replace=False)
                            )
                        )
                    )
            violations = _column_violations(candidate, placed, circulant_size)
            if best_violations is None or violations < best_violations:
                best_candidate = candidate
                best_violations = violations
            if violations == 0:
                break
        if best_violations and require_girth_6:
            raise RuntimeError(
                f"could not place block column {column_index} without 4-cycles"
            )
        placed.append(best_candidate)
    block_rows = tuple(
        tuple(placed[k][j] for k in range(col_blocks)) for j in range(row_blocks)
    )
    return CirculantSpec(circulant_size, block_rows)


def build_random_regular_spec(
    circulant_size: int,
    row_blocks: int,
    col_blocks: int,
    block_weight: int = 1,
    *,
    rng=None,
) -> CirculantSpec:
    """Build a random (not girth-conditioned) regular circulant specification.

    Useful as a baseline in construction-quality studies and for exercising
    code paths on arbitrary shapes; prefer :func:`build_ccsds_like_spec` for
    codes that will actually be decoded.
    """
    rng = ensure_rng(rng)
    rows = []
    for _ in range(row_blocks):
        row = []
        for _ in range(col_blocks):
            positions = tuple(
                sorted(
                    int(p)
                    for p in rng.choice(circulant_size, size=block_weight, replace=False)
                )
            )
            row.append(positions)
        rows.append(tuple(row))
    return CirculantSpec(circulant_size, tuple(rows))
