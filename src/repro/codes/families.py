"""Registered code families: the ``code`` axis of the campaign registry.

Each entry wraps one of the concrete constructions in this package behind a
flat keyword interface so :class:`~repro.sim.campaign.spec.CodeSpec` (and
the ``components`` CLI) can build and document it symbolically:

* ``ccsds-c2`` — the paper's full (8176, 7154) code; a ``circulant``
  override builds the scaled structural twin instead (the spec's ``key``
  reflects that, so stored curves never claim the full code's results);
* ``scaled`` — the smaller structural twin directly (``circulant`` is
  required);
* ``deepspace`` — an AR4JA-style deep-space code (``rate`` required,
  ``circulant`` defaults to 64).

Third-party families register through the same decorator
(:func:`repro.registry.register_code`); any parameter their builder accepts
from the ``(circulant, rate, params)`` vocabulary of ``CodeSpec`` becomes
spec-addressable.
"""

from __future__ import annotations

from repro.codes.ccsds_c2 import (
    CCSDS_C2_CIRCULANT_SIZE,
    build_ccsds_c2_code,
    build_scaled_ccsds_code,
)
from repro.codes.deepspace import AR4JA_RATES, build_deepspace_code
from repro.registry import Param, register_code

__all__ = []  # nothing to export: importing this module registers the families


@register_code(
    "ccsds-c2",
    params=[
        Param(
            "circulant",
            "int",
            doc=f"circulant size; omitted or {CCSDS_C2_CIRCULANT_SIZE} builds "
            "the full code, anything else its scaled structural twin",
        ),
    ],
    summary="The paper's (8176, 7154) CCSDS near-earth C2 code",
)
def _build_ccsds_c2_family(circulant: int | None = None):
    if circulant in (None, CCSDS_C2_CIRCULANT_SIZE):
        return build_ccsds_c2_code()
    return build_scaled_ccsds_code(circulant)


@register_code(
    "scaled",
    params=[
        Param(
            "circulant",
            "int",
            required=True,
            doc="circulant size of the scaled twin (e.g. 31, 63)",
        ),
    ],
    summary="Scaled structural twin of the CCSDS C2 code (fast to simulate)",
)
def _build_scaled_family(circulant: int):
    return build_scaled_ccsds_code(circulant)


@register_code(
    "deepspace",
    params=[
        Param(
            "rate",
            "str",
            required=True,
            choices=tuple(AR4JA_RATES),
            doc="AR4JA code rate",
        ),
        Param("circulant", "int", default=64, doc="protograph lifting factor"),
    ],
    summary="AR4JA-style deep-space code (punctured protograph LDPC)",
)
def _build_deepspace_family(rate: str, circulant: int = 64):
    code, _ = build_deepspace_code(rate, circulant)
    return code
