"""Parity-check matrix wrapper.

``ParityCheckMatrix`` owns the sparse H matrix of an LDPC code and exposes
the views the rest of the library needs: degree profiles, syndrome checks,
edge lists for the decoders, rank/dimension (computed lazily because the
dense row-reduction of the full CCSDS matrix is a multi-second operation),
and the scatter data used to reproduce Figure 2 of the paper.
"""

from __future__ import annotations

import numpy as np

from repro.gf2.dense import gf2_rank
from repro.gf2.sparse import SparseBinaryMatrix

__all__ = ["ParityCheckMatrix"]


class ParityCheckMatrix:
    """Sparse parity-check matrix of an (n, k) LDPC code.

    Parameters
    ----------
    matrix:
        Either a :class:`~repro.gf2.sparse.SparseBinaryMatrix` or a dense 0/1
        array of shape ``(m, n)`` where ``m`` is the number of parity checks
        and ``n`` the code length.
    """

    def __init__(self, matrix):
        if isinstance(matrix, SparseBinaryMatrix):
            self._sparse = matrix
        else:
            self._sparse = SparseBinaryMatrix.from_dense(np.asarray(matrix))
        self._rank: int | None = None

    # ------------------------------------------------------------------ #
    # Basic dimensions
    # ------------------------------------------------------------------ #
    @property
    def sparse(self) -> SparseBinaryMatrix:
        """The underlying sparse matrix."""
        return self._sparse

    @property
    def num_checks(self) -> int:
        """Number of parity-check rows ``m``."""
        return self._sparse.shape[0]

    @property
    def block_length(self) -> int:
        """Code length ``n`` (number of columns)."""
        return self._sparse.shape[1]

    @property
    def num_edges(self) -> int:
        """Number of ones in H — the number of messages exchanged per iteration."""
        return self._sparse.nnz

    @property
    def rank(self) -> int:
        """GF(2) rank of H (computed once, then cached)."""
        if self._rank is None:
            self._rank = gf2_rank(self._sparse.to_dense())
        return self._rank

    @property
    def dimension(self) -> int:
        """Code dimension ``k = n - rank(H)``."""
        return self.block_length - self.rank

    @property
    def design_rate(self) -> float:
        """Design rate ``(n - m) / n`` assuming full-rank H."""
        return (self.block_length - self.num_checks) / self.block_length

    @property
    def rate(self) -> float:
        """True code rate ``k / n`` using the actual rank of H."""
        return self.dimension / self.block_length

    # ------------------------------------------------------------------ #
    # Degree profiles
    # ------------------------------------------------------------------ #
    def check_degrees(self) -> np.ndarray:
        """Degree (row weight) of every check node."""
        return self._sparse.row_degrees()

    def bit_degrees(self) -> np.ndarray:
        """Degree (column weight) of every bit node."""
        return self._sparse.col_degrees()

    def is_regular(self) -> bool:
        """``True`` when all check degrees are equal and all bit degrees are equal."""
        check = self.check_degrees()
        bit = self.bit_degrees()
        return bool(
            check.size
            and bit.size
            and (check == check[0]).all()
            and (bit == bit[0]).all()
        )

    def degree_profile(self) -> dict[str, dict[int, int]]:
        """Histogram of check and bit degrees.

        Returns a dictionary ``{"check": {degree: count}, "bit": {...}}``.
        """
        check_vals, check_counts = np.unique(self.check_degrees(), return_counts=True)
        bit_vals, bit_counts = np.unique(self.bit_degrees(), return_counts=True)
        return {
            "check": {int(v): int(c) for v, c in zip(check_vals, check_counts)},
            "bit": {int(v): int(c) for v, c in zip(bit_vals, bit_counts)},
        }

    # ------------------------------------------------------------------ #
    # Edge views and syndrome
    # ------------------------------------------------------------------ #
    def edges(self) -> tuple[np.ndarray, np.ndarray]:
        """``(check_index, bit_index)`` arrays of every edge, sorted by check."""
        return self._sparse.row_indices, self._sparse.col_indices

    def syndrome(self, codeword) -> np.ndarray:
        """Syndrome ``H @ c^T mod 2`` for a codeword or a batch of codewords."""
        return self._sparse.matvec(codeword)

    def is_codeword(self, word) -> bool | np.ndarray:
        """Whether a word (or each word of a batch) satisfies all parity checks."""
        syndrome = self.syndrome(word)
        if syndrome.ndim == 1:
            return bool(not syndrome.any())
        return ~syndrome.any(axis=1)

    # ------------------------------------------------------------------ #
    # Figure-2 style views
    # ------------------------------------------------------------------ #
    def scatter(self) -> tuple[np.ndarray, np.ndarray]:
        """Coordinates of every 1 in H, for scatter plots (paper Figure 2)."""
        return self._sparse.row_indices.copy(), self._sparse.col_indices.copy()

    def density_grid(self, row_bins: int, col_bins: int) -> np.ndarray:
        """Count the ones of H in a ``row_bins x col_bins`` grid.

        This is an ASCII-friendly stand-in for the scatter chart: each cell
        of the returned array counts the ones whose coordinates fall in the
        corresponding rectangle of H.
        """
        if row_bins <= 0 or col_bins <= 0:
            raise ValueError("bin counts must be positive")
        rows, cols = self.scatter()
        m, n = self._sparse.shape
        row_cell = np.minimum((rows * row_bins) // m, row_bins - 1)
        col_cell = np.minimum((cols * col_bins) // n, col_bins - 1)
        grid = np.zeros((row_bins, col_bins), dtype=np.int64)
        np.add.at(grid, (row_cell, col_cell), 1)
        return grid

    def to_dense(self) -> np.ndarray:
        """Dense 0/1 copy of H (use only for small codes and tests)."""
        return self._sparse.to_dense()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ParityCheckMatrix(m={self.num_checks}, n={self.block_length}, "
            f"edges={self.num_edges})"
        )
