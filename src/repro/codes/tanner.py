"""Tanner graph view of an LDPC code.

The Tanner graph (paper Figure 1) is the bipartite graph with one *bit node*
per codeword bit and one *check node* per parity-check equation, connected
wherever H has a 1.  This module provides degree statistics, girth
computation (the length of the shortest cycle, which strongly influences
iterative-decoding performance), and an optional export to ``networkx``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.codes.parity_check import ParityCheckMatrix

__all__ = ["TannerGraph", "TannerGraphStats"]


@dataclass(frozen=True)
class TannerGraphStats:
    """Summary statistics of a Tanner graph (what Figure 1 illustrates)."""

    num_bit_nodes: int
    num_check_nodes: int
    num_edges: int
    bit_degree_min: int
    bit_degree_max: int
    check_degree_min: int
    check_degree_max: int
    girth: int | None


class TannerGraph:
    """Bipartite bit-node / check-node graph of a parity-check matrix."""

    def __init__(self, parity_check: ParityCheckMatrix):
        self._pcm = parity_check
        check_idx, bit_idx = parity_check.edges()
        n = parity_check.block_length
        m = parity_check.num_checks
        # Adjacency lists: checks adjacent to each bit, bits adjacent to each check.
        self._bits_of_check: list[np.ndarray] = [
            bit_idx[check_idx == c] for c in range(m)
        ]
        order = np.argsort(bit_idx, kind="stable")
        sorted_bits = bit_idx[order]
        sorted_checks = check_idx[order]
        boundaries = np.searchsorted(sorted_bits, np.arange(n + 1))
        self._checks_of_bit: list[np.ndarray] = [
            sorted_checks[boundaries[b] : boundaries[b + 1]] for b in range(n)
        ]

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def parity_check(self) -> ParityCheckMatrix:
        """The parity-check matrix this graph was built from."""
        return self._pcm

    @property
    def num_bit_nodes(self) -> int:
        """Number of bit (variable) nodes."""
        return self._pcm.block_length

    @property
    def num_check_nodes(self) -> int:
        """Number of check nodes."""
        return self._pcm.num_checks

    @property
    def num_edges(self) -> int:
        """Number of edges (= messages exchanged per half-iteration)."""
        return self._pcm.num_edges

    def bits_of_check(self, check: int) -> np.ndarray:
        """Bit nodes connected to a given check node."""
        return self._bits_of_check[check]

    def checks_of_bit(self, bit: int) -> np.ndarray:
        """Check nodes connected to a given bit node."""
        return self._checks_of_bit[bit]

    # ------------------------------------------------------------------ #
    # Girth
    # ------------------------------------------------------------------ #
    def girth(self, *, max_bits: int | None = None) -> int | None:
        """Length of the shortest cycle in the Tanner graph.

        Cycles in a bipartite graph have even length, and a 4-cycle means two
        bits share two checks (bad for decoding).  Returns ``None`` when the
        graph is acyclic.

        Parameters
        ----------
        max_bits:
            When set, the breadth-first searches are started only from the
            first ``max_bits`` bit nodes.  For vertex-transitive constructions
            such as Quasi-Cyclic codes the girth through every node in a
            circulant column is identical, so sampling one bit per block
            column is exact; for general codes it yields an upper bound.
        """
        best = None
        n = self.num_bit_nodes
        start_bits = range(n if max_bits is None else min(max_bits, n))
        for start in start_bits:
            cycle = self._shortest_cycle_through_bit(start, best)
            if cycle is not None and (best is None or cycle < best):
                best = cycle
                if best == 4:  # cannot do better in a bipartite graph
                    break
        return best

    def _shortest_cycle_through_bit(self, start_bit: int, prune: int | None) -> int | None:
        """BFS from one bit node; returns the shortest cycle through it."""
        # Distance in "hops" where one hop is bit->check or check->bit.
        # Node encoding: bits are (0, b), checks are (1, c).
        dist_bits = {start_bit: 0}
        dist_checks: dict[int, int] = {}
        parent_bits = {start_bit: -1}   # parent check of each bit
        parent_checks: dict[int, int] = {}  # parent bit of each check
        queue: deque[tuple[int, int]] = deque([(0, start_bit)])
        best = None
        while queue:
            kind, node = queue.popleft()
            depth = dist_bits[node] if kind == 0 else dist_checks[node]
            # Any cycle found from here on has length >= 2*depth, so stop once
            # the frontier is deeper than half of the best known cycle.
            if prune is not None and 2 * depth >= prune:
                break
            if best is not None and 2 * depth >= best:
                break
            if kind == 0:
                for check in self._checks_of_bit[node]:
                    check = int(check)
                    if check == parent_bits[node]:
                        continue
                    if check in dist_checks:
                        # Found a cycle: depth(bit) + depth(check) + 1 edges.
                        cycle = depth + dist_checks[check] + 1
                        if cycle % 2 == 0 and (best is None or cycle < best):
                            best = cycle
                    else:
                        dist_checks[check] = depth + 1
                        parent_checks[check] = node
                        queue.append((1, check))
            else:
                for bit in self._bits_of_check[node]:
                    bit = int(bit)
                    if bit == parent_checks[node]:
                        continue
                    if bit in dist_bits:
                        cycle = depth + dist_bits[bit] + 1
                        if cycle % 2 == 0 and (best is None or cycle < best):
                            best = cycle
                    else:
                        dist_bits[bit] = depth + 1
                        parent_bits[bit] = node
                        queue.append((0, bit))
        return best

    def has_four_cycles(self) -> bool:
        """Fast check for 4-cycles: two bits sharing two checks.

        Works directly on the sparse structure without a full girth search:
        a 4-cycle exists exactly when some pair of bit nodes appears together
        in two different checks.
        """
        seen: set[tuple[int, int]] = set()
        for c in range(self.num_check_nodes):
            bits = np.sort(self._bits_of_check[c])
            for i in range(bits.size):
                for j in range(i + 1, bits.size):
                    pair = (int(bits[i]), int(bits[j]))
                    if pair in seen:
                        return True
                    seen.add(pair)
        return False

    # ------------------------------------------------------------------ #
    # Statistics / export
    # ------------------------------------------------------------------ #
    def stats(self, *, girth_max_bits: int | None = 64) -> TannerGraphStats:
        """Summary statistics including a (possibly sampled) girth estimate."""
        bit_deg = self._pcm.bit_degrees()
        check_deg = self._pcm.check_degrees()
        return TannerGraphStats(
            num_bit_nodes=self.num_bit_nodes,
            num_check_nodes=self.num_check_nodes,
            num_edges=self.num_edges,
            bit_degree_min=int(bit_deg.min()) if bit_deg.size else 0,
            bit_degree_max=int(bit_deg.max()) if bit_deg.size else 0,
            check_degree_min=int(check_deg.min()) if check_deg.size else 0,
            check_degree_max=int(check_deg.max()) if check_deg.size else 0,
            girth=self.girth(max_bits=girth_max_bits),
        )

    def to_networkx(self):
        """Export as a ``networkx.Graph`` with ``bipartite`` node attributes.

        Bit nodes are labelled ``("bit", i)`` and check nodes ``("check", j)``.
        Requires ``networkx`` (an optional dependency).
        """
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from((("bit", b) for b in range(self.num_bit_nodes)), bipartite=0)
        graph.add_nodes_from(
            (("check", c) for c in range(self.num_check_nodes)), bipartite=1
        )
        check_idx, bit_idx = self._pcm.edges()
        graph.add_edges_from(
            (("check", int(c)), ("bit", int(b))) for c, b in zip(check_idx, bit_idx)
        )
        return graph
