"""Quasi-Cyclic LDPC codes.

A QC-LDPC code is described by a small *block array* of circulants: the
CCSDS C2 code juxtaposes a 2 x 16 array of 511 x 511 circulants, each of
row/column weight 2, to form the 1022 x 8176 parity-check matrix
(paper Section 2.2).  :class:`CirculantSpec` captures that block array and
:class:`QCLDPCCode` expands it (lazily) into a
:class:`~repro.codes.parity_check.ParityCheckMatrix`, exposes the structure
the hardware exploits (which block column / offset every edge belongs to),
and provides the circulant-level algebra needed by the encoder.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.codes.parity_check import ParityCheckMatrix
from repro.gf2.circulant import Circulant
from repro.gf2.sparse import SparseBinaryMatrix

__all__ = ["CirculantSpec", "QCLDPCCode"]


@dataclass(frozen=True)
class CirculantSpec:
    """Block-array description of a QC-LDPC parity-check matrix.

    Parameters
    ----------
    circulant_size:
        Size ``b`` of every circulant block.
    block_positions:
        Nested tuple of shape ``(row_blocks, col_blocks)``; entry ``[j][k]``
        is the tuple of first-row positions of circulant block ``(j, k)``
        (empty tuple = zero block).
    """

    circulant_size: int
    block_positions: tuple[tuple[tuple[int, ...], ...], ...]

    def __post_init__(self):
        if self.circulant_size <= 0:
            raise ValueError("circulant_size must be positive")
        if not self.block_positions:
            raise ValueError("block_positions must not be empty")
        width = len(self.block_positions[0])
        normalized_rows = []
        for row in self.block_positions:
            if len(row) != width:
                raise ValueError("all block rows must have the same number of columns")
            normalized_row = []
            for positions in row:
                norm = tuple(sorted(int(p) % self.circulant_size for p in positions))
                if len(set(norm)) != len(norm):
                    raise ValueError("duplicate first-row position in a circulant block")
                normalized_row.append(norm)
            normalized_rows.append(tuple(normalized_row))
        object.__setattr__(self, "block_positions", tuple(normalized_rows))

    # ------------------------------------------------------------------ #
    @property
    def row_blocks(self) -> int:
        """Number of block rows."""
        return len(self.block_positions)

    @property
    def col_blocks(self) -> int:
        """Number of block columns."""
        return len(self.block_positions[0])

    @property
    def num_checks(self) -> int:
        """Total number of parity-check rows ``m = row_blocks * b``."""
        return self.row_blocks * self.circulant_size

    @property
    def block_length(self) -> int:
        """Total code length ``n = col_blocks * b``."""
        return self.col_blocks * self.circulant_size

    def circulant(self, block_row: int, block_col: int) -> Circulant:
        """The circulant object at block coordinates ``(block_row, block_col)``."""
        return Circulant(self.circulant_size, self.block_positions[block_row][block_col])

    def block_weights(self) -> np.ndarray:
        """Matrix of circulant weights, shape ``(row_blocks, col_blocks)``."""
        return np.array(
            [[len(pos) for pos in row] for row in self.block_positions], dtype=np.int64
        )

    def total_edges(self) -> int:
        """Total number of ones in the expanded parity-check matrix."""
        return int(self.block_weights().sum()) * self.circulant_size

    def row_weight(self) -> int:
        """Total row weight of the expanded H (assumes block-row regularity)."""
        weights = self.block_weights().sum(axis=1)
        return int(weights[0])

    def column_weight(self) -> int:
        """Total column weight of the expanded H (assumes block-column regularity)."""
        weights = self.block_weights().sum(axis=0)
        return int(weights[0])


class QCLDPCCode:
    """A Quasi-Cyclic LDPC code expanded from a :class:`CirculantSpec`.

    The expansion to a sparse parity-check matrix and the dense rank
    computation are performed lazily and cached, because the full CCSDS code
    is large (8176 columns, ~32k edges).
    """

    def __init__(self, spec: CirculantSpec):
        self._spec = spec
        self._pcm: ParityCheckMatrix | None = None
        self._dimension: int | None = None

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #
    @property
    def spec(self) -> CirculantSpec:
        """The circulant block-array specification."""
        return self._spec

    @property
    def circulant_size(self) -> int:
        """Size of each circulant block."""
        return self._spec.circulant_size

    @property
    def block_length(self) -> int:
        """Code length ``n``."""
        return self._spec.block_length

    @property
    def num_checks(self) -> int:
        """Number of parity-check equations ``m`` (rows of H, possibly redundant)."""
        return self._spec.num_checks

    @property
    def num_edges(self) -> int:
        """Number of edges in the Tanner graph."""
        return self._spec.total_edges()

    @property
    def dimension(self) -> int:
        """True code dimension ``k = n - rank(H)``.

        For the CCSDS construction every column has even weight, so the rows
        of H sum to zero and H is rank deficient; the dimension is therefore
        larger than ``n - m``.
        """
        if self._dimension is None:
            self._dimension = self.parity_check_matrix().dimension
        return self._dimension

    @property
    def rate(self) -> float:
        """True code rate ``k / n``."""
        return self.dimension / self.block_length

    # ------------------------------------------------------------------ #
    # Expansion
    # ------------------------------------------------------------------ #
    def parity_check_matrix(self) -> ParityCheckMatrix:
        """Expand (once) into a sparse :class:`ParityCheckMatrix`."""
        if self._pcm is None:
            self._pcm = ParityCheckMatrix(self._expand_sparse())
        return self._pcm

    def _expand_sparse(self) -> SparseBinaryMatrix:
        spec = self._spec
        b = spec.circulant_size
        all_rows: list[np.ndarray] = []
        all_cols: list[np.ndarray] = []
        for j in range(spec.row_blocks):
            for k in range(spec.col_blocks):
                circulant = spec.circulant(j, k)
                if circulant.is_zero:
                    continue
                rows, cols = circulant.nonzero_coordinates()
                all_rows.append(rows + j * b)
                all_cols.append(cols + k * b)
        if all_rows:
            rows = np.concatenate(all_rows)
            cols = np.concatenate(all_cols)
        else:
            rows = np.empty(0, dtype=np.int64)
            cols = np.empty(0, dtype=np.int64)
        return SparseBinaryMatrix((spec.num_checks, spec.block_length), rows, cols)

    # ------------------------------------------------------------------ #
    # Hardware-oriented views
    # ------------------------------------------------------------------ #
    def block_coordinates_of_bit(self, bit_index: int) -> tuple[int, int]:
        """``(block_column, offset)`` of a bit index — the memory address split
        the hardware uses (block column selects the memory bank, offset the word)."""
        if not 0 <= bit_index < self.block_length:
            raise ValueError("bit index out of range")
        return bit_index // self.circulant_size, bit_index % self.circulant_size

    def block_coordinates_of_check(self, check_index: int) -> tuple[int, int]:
        """``(block_row, offset)`` of a check index."""
        if not 0 <= check_index < self.num_checks:
            raise ValueError("check index out of range")
        return check_index // self.circulant_size, check_index % self.circulant_size

    def syndrome(self, codeword) -> np.ndarray:
        """Syndrome of a codeword (or batch) with respect to the expanded H."""
        return self.parity_check_matrix().syndrome(codeword)

    def is_codeword(self, word) -> bool | np.ndarray:
        """Whether a word (or each word in a batch) is a valid codeword."""
        return self.parity_check_matrix().is_codeword(word)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QCLDPCCode(b={self.circulant_size}, "
            f"blocks={self._spec.row_blocks}x{self._spec.col_blocks}, "
            f"n={self.block_length})"
        )
