"""File formats: alist parity-check matrices and circulant specification tables."""

from repro.io.alist import read_alist, write_alist
from repro.io.circulant_table import (
    load_circulant_spec,
    save_circulant_spec,
    spec_from_dict,
    spec_to_dict,
)

__all__ = [
    "read_alist",
    "write_alist",
    "load_circulant_spec",
    "save_circulant_spec",
    "spec_from_dict",
    "spec_to_dict",
]
