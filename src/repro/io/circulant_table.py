"""JSON serialization of Quasi-Cyclic circulant specifications.

The CCSDS standard specifies its code as a table of circulant first-row
positions; this module reads and writes that table so users who have the
official CCSDS 131.1-O-2 values (or any other QC code definition) can load
them and obtain a drop-in replacement for the library's reconstructed code.

Schema::

    {
      "circulant_size": 511,
      "block_positions": [
        [[p, p, ...], ...],   # block row 0: one list of positions per block column
        [[p, p, ...], ...]    # block row 1
      ]
    }
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.codes.qc import CirculantSpec

__all__ = ["spec_to_dict", "spec_from_dict", "save_circulant_spec", "load_circulant_spec"]


def spec_to_dict(spec: CirculantSpec) -> dict:
    """Convert a :class:`CirculantSpec` to a JSON-serializable dictionary."""
    return {
        "circulant_size": spec.circulant_size,
        "block_positions": [
            [list(positions) for positions in row] for row in spec.block_positions
        ],
    }


def spec_from_dict(data: dict) -> CirculantSpec:
    """Build a :class:`CirculantSpec` from the dictionary schema."""
    try:
        circulant_size = int(data["circulant_size"])
        raw_rows = data["block_positions"]
    except (KeyError, TypeError) as exc:
        raise ValueError("invalid circulant table: missing required keys") from exc
    block_rows = tuple(
        tuple(tuple(int(p) for p in positions) for positions in row) for row in raw_rows
    )
    return CirculantSpec(circulant_size, block_rows)


def save_circulant_spec(spec: CirculantSpec, path) -> None:
    """Write a circulant specification to a JSON file."""
    Path(path).write_text(json.dumps(spec_to_dict(spec), indent=2) + "\n")


def load_circulant_spec(path) -> CirculantSpec:
    """Load a circulant specification from a JSON file."""
    return spec_from_dict(json.loads(Path(path).read_text()))
