"""Reader / writer for the MacKay "alist" sparse-matrix format.

The alist format is the de-facto interchange format for LDPC parity-check
matrices (used by MacKay's database, aff3ct, and most research codebases).
Layout::

    n m
    max_col_degree max_row_degree
    col degrees (n integers)
    row degrees (m integers)
    for each column: the 1-based row indices of its ones (padded with 0s)
    for each row:    the 1-based column indices of its ones (padded with 0s)

Reading tolerates both padded and unpadded variants.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.codes.parity_check import ParityCheckMatrix
from repro.gf2.sparse import SparseBinaryMatrix

__all__ = ["read_alist", "write_alist"]


def write_alist(parity_check: ParityCheckMatrix, path) -> None:
    """Write a parity-check matrix to an alist file."""
    sparse = parity_check.sparse
    m, n = sparse.shape
    col_degrees = parity_check.bit_degrees()
    row_degrees = parity_check.check_degrees()
    max_col = int(col_degrees.max()) if n else 0
    max_row = int(row_degrees.max()) if m else 0

    check_idx, bit_idx = parity_check.edges()
    cols_of_row: list[list[int]] = [[] for _ in range(m)]
    rows_of_col: list[list[int]] = [[] for _ in range(n)]
    for check, bit in zip(check_idx, bit_idx):
        cols_of_row[int(check)].append(int(bit) + 1)
        rows_of_col[int(bit)].append(int(check) + 1)

    lines = [f"{n} {m}", f"{max_col} {max_row}"]
    lines.append(" ".join(str(int(d)) for d in col_degrees))
    lines.append(" ".join(str(int(d)) for d in row_degrees))
    for col in range(n):
        entries = rows_of_col[col] + [0] * (max_col - len(rows_of_col[col]))
        lines.append(" ".join(str(e) for e in entries))
    for row in range(m):
        entries = cols_of_row[row] + [0] * (max_row - len(cols_of_row[row]))
        lines.append(" ".join(str(e) for e in entries))
    Path(path).write_text("\n".join(lines) + "\n")


def read_alist(path) -> ParityCheckMatrix:
    """Read a parity-check matrix from an alist file."""
    tokens_per_line = [
        [int(tok) for tok in line.split()]
        for line in Path(path).read_text().splitlines()
        if line.strip()
    ]
    if len(tokens_per_line) < 4:
        raise ValueError("alist file too short")
    n, m = tokens_per_line[0]
    col_degrees = tokens_per_line[2]
    if len(col_degrees) != n:
        raise ValueError("column degree list length does not match n")
    column_lines = tokens_per_line[4 : 4 + n]
    if len(column_lines) < n:
        raise ValueError("alist file truncated: missing column adjacency lines")

    rows: list[int] = []
    cols: list[int] = []
    for col, line in enumerate(column_lines):
        entries = [e for e in line if e > 0]
        if len(entries) != col_degrees[col]:
            raise ValueError(
                f"column {col} lists {len(entries)} entries but declares degree "
                f"{col_degrees[col]}"
            )
        for row_index in entries:
            rows.append(row_index - 1)
            cols.append(col)
    sparse = SparseBinaryMatrix((m, n), np.array(rows), np.array(cols))
    return ParityCheckMatrix(sparse)
