"""Setup script (no pyproject.toml: offline environments lack ``wheel``).

Carries the real metadata so ``pip install -e .`` / ``python setup.py
develop`` work without network access, and ships the ``py.typed`` marker
(PEP 561) so downstream type checkers see the package's inline annotations.
"""

from setuptools import find_packages, setup

setup(
    name="repro-ccsds-ldpc",
    version="0.6.0",
    description=(
        "Reproduction of a DATE 2009 CCSDS LDPC decoder paper: code "
        "construction, decoders, FPGA models, Monte-Carlo campaigns"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.11",
    install_requires=["numpy>=1.24"],
    zip_safe=False,
)
