"""Setup shim so the package can be installed with legacy tooling.

The canonical metadata lives in pyproject.toml; this file only exists so
that ``python setup.py develop`` / ``pip install -e .`` work in offline
environments that lack the ``wheel`` package required by PEP 660 editable
installs.
"""

from setuptools import setup

setup()
