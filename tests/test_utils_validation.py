"""Unit tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_binary_array,
    check_in_range,
    check_non_negative,
    check_one_of,
    check_positive,
    check_probability,
    check_shape,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 3.5) == 3.5

    def test_rejects_zero_when_strict(self):
        with pytest.raises(ValueError):
            check_positive("x", 0)

    def test_accepts_zero_when_not_strict(self):
        assert check_non_negative("x", 0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative("x", -1)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_positive("x", float("nan"))


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_valid(self, value):
        assert check_probability("p", value) == value

    @pytest.mark.parametrize("value", [-0.1, 1.1, float("inf")])
    def test_rejects_invalid(self, value):
        with pytest.raises(ValueError):
            check_probability("p", value)


class TestCheckInRangeAndOneOf:
    def test_in_range(self):
        assert check_in_range("x", 5, 0, 10) == 5
        with pytest.raises(ValueError):
            check_in_range("x", 11, 0, 10)

    def test_one_of(self):
        assert check_one_of("mode", "a", ("a", "b")) == "a"
        with pytest.raises(ValueError):
            check_one_of("mode", "c", ("a", "b"))


class TestCheckBinaryArray:
    def test_accepts_binary(self):
        out = check_binary_array("bits", [0, 1, 1, 0])
        assert out.dtype == np.uint8

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            check_binary_array("bits", [0, 2])

    def test_empty_ok(self):
        assert check_binary_array("bits", []).size == 0


class TestCheckShape:
    def test_exact_match(self):
        arr = np.zeros((2, 3))
        assert check_shape("a", arr, (2, 3)) is not None

    def test_wildcard(self):
        arr = np.zeros((5, 3))
        check_shape("a", arr, (-1, 3))

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            check_shape("a", np.zeros(3), (1, 3))

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            check_shape("a", np.zeros((2, 4)), (2, 3))
