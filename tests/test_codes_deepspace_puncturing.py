"""Unit tests for the deep-space (AR4JA-style) extension and puncturing."""

import numpy as np
import pytest

from repro.channel import BPSKModulator, channel_llrs, ebn0_to_sigma
from repro.codes.construction import build_protograph_spec, spec_has_four_cycle
from repro.codes.deepspace import (
    AR4JA_RATES,
    ar4ja_like_protograph,
    ar4ja_punctured_proto_columns,
    build_deepspace_code,
    deepspace_architecture,
)
from repro.codes.puncturing import PuncturedCode
from repro.codes.qc import QCLDPCCode
from repro.core import ThroughputModel, estimate_resources
from repro.decode import NormalizedMinSumDecoder
from repro.encode import SystematicEncoder


class TestPuncturedCode:
    def test_dimensions(self, scaled_code):
        punctured = PuncturedCode(scaled_code, np.arange(31))
        assert punctured.num_punctured == 31
        assert punctured.transmitted_length == scaled_code.block_length - 31
        assert punctured.dimension == scaled_code.dimension
        assert punctured.rate > scaled_code.rate

    def test_extract_and_reinsert(self, scaled_code, rng):
        punctured = PuncturedCode(scaled_code, [0, 5, 9])
        word = rng.integers(0, 2, size=scaled_code.block_length, dtype=np.uint8)
        transmitted = punctured.extract_transmitted(word)
        assert transmitted.size == scaled_code.block_length - 3
        llrs = punctured.base_llrs_from_transmitted_llrs(
            np.ones(punctured.transmitted_length)
        )
        assert llrs.shape == (scaled_code.block_length,)
        assert (llrs[punctured.punctured_positions()] == 0).all()
        assert (llrs[punctured.transmitted_positions()] == 1).all()

    def test_validation(self, scaled_code):
        with pytest.raises(ValueError):
            PuncturedCode(scaled_code, [scaled_code.block_length])
        with pytest.raises(ValueError):
            PuncturedCode(scaled_code, np.arange(scaled_code.block_length))
        punctured = PuncturedCode(scaled_code, [0])
        with pytest.raises(ValueError):
            punctured.extract_transmitted(np.zeros(3, dtype=np.uint8))
        with pytest.raises(ValueError):
            punctured.base_llrs_from_transmitted_llrs(np.zeros(3))


class TestProtographLifting:
    def test_lifted_spec_matches_base_matrix(self):
        base = [[1, 2, 0], [0, 1, 3]]
        spec = build_protograph_spec(base, 16, rng=0)
        assert spec.block_weights().tolist() == base

    def test_girth_aware_lifting_avoids_4_cycles_when_possible(self):
        base = [[1, 1, 1, 1], [1, 1, 1, 1]]
        spec = build_protograph_spec(base, 31, rng=1)
        assert not spec_has_four_cycle(spec)

    def test_rejects_invalid_base(self):
        with pytest.raises(ValueError):
            build_protograph_spec([[-1]], 8)
        with pytest.raises(ValueError):
            build_protograph_spec([[9]], 8)

    def test_deterministic(self):
        base = [[2, 1], [1, 2]]
        assert build_protograph_spec(base, 16, rng=3) == build_protograph_spec(base, 16, rng=3)


class TestAR4JAProtographs:
    @pytest.mark.parametrize(
        "rate,columns,expected_rate",
        [("1/2", 5, 0.5), ("2/3", 7, 2 / 3), ("4/5", 11, 0.8)],
    )
    def test_rate_ladder(self, rate, columns, expected_rate):
        proto = ar4ja_like_protograph(rate)
        assert proto.num_check_types == 3
        assert proto.num_bit_types == columns
        punctured = len(ar4ja_punctured_proto_columns(rate))
        design_rate = (proto.num_bit_types - proto.num_check_types) / (
            proto.num_bit_types - punctured
        )
        assert design_rate == pytest.approx(expected_rate)

    def test_hub_is_highest_degree_and_unique(self):
        for rate in AR4JA_RATES:
            proto = ar4ja_like_protograph(rate)
            degrees = proto.bit_degrees()
            hub = ar4ja_punctured_proto_columns(rate)[0]
            assert degrees[hub] == degrees.max()
            assert int((degrees == degrees.max()).sum()) == 1

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            ar4ja_like_protograph("3/4")


class TestDeepSpaceCodes:
    @pytest.mark.parametrize("rate", AR4JA_RATES)
    def test_code_dimensions(self, rate):
        code, punctured = build_deepspace_code(rate, 32)
        proto = ar4ja_like_protograph(rate)
        assert code.block_length == proto.num_bit_types * 32
        # Full-rank lifting: information bits equal the design value.
        assert code.dimension == (proto.num_bit_types - proto.num_check_types) * 32
        assert punctured.num_punctured == 32

    def test_transmitted_rate_matches_design(self):
        for rate, expected in zip(AR4JA_RATES, (0.5, 2 / 3, 0.8)):
            _, punctured = build_deepspace_code(rate, 32)
            assert punctured.rate == pytest.approx(expected, rel=0.02)

    def test_deterministic_construction(self):
        a, _ = build_deepspace_code("1/2", 32)
        b, _ = build_deepspace_code("1/2", 32)
        assert a.spec == b.spec

    def test_end_to_end_decoding_with_puncturing(self, rng):
        """Encode, puncture, transmit, re-insert erasures, decode."""
        code, punctured = build_deepspace_code("1/2", 64)
        encoder = SystematicEncoder(code)
        info = rng.integers(0, 2, size=(4, encoder.dimension), dtype=np.uint8)
        codewords = encoder.encode(info)
        transmitted = punctured.extract_transmitted(codewords)
        sigma = ebn0_to_sigma(3.0, punctured.rate)
        received = BPSKModulator().modulate(transmitted) + rng.normal(
            0, sigma, transmitted.shape
        )
        llrs = punctured.base_llrs_from_transmitted_llrs(channel_llrs(received, sigma))
        result = NormalizedMinSumDecoder(code, max_iterations=50).decode(llrs)
        assert int((result.bits != codewords).sum()) == 0

    def test_lower_rate_tolerates_lower_snr(self):
        """Rate 1/2 decodes reliably at an Eb/N0 where rate 4/5 struggles."""
        rng = np.random.default_rng(3)
        ebn0_db = 2.0
        failures = {}
        for rate in ("1/2", "4/5"):
            code, punctured = build_deepspace_code(rate, 64)
            encoder = SystematicEncoder(code)
            info = rng.integers(0, 2, size=(12, encoder.dimension), dtype=np.uint8)
            codewords = encoder.encode(info)
            transmitted = punctured.extract_transmitted(codewords)
            sigma = ebn0_to_sigma(ebn0_db, punctured.rate)
            received = BPSKModulator().modulate(transmitted) + rng.normal(
                0, sigma, transmitted.shape
            )
            llrs = punctured.base_llrs_from_transmitted_llrs(channel_llrs(received, sigma))
            result = NormalizedMinSumDecoder(code, max_iterations=30).decode(llrs)
            failures[rate] = int((np.atleast_2d(result.bits) != codewords).any(axis=1).sum())
        assert failures["1/2"] <= failures["4/5"]


class TestDeepSpaceArchitecture:
    def test_parameters_follow_protograph(self):
        params = deepspace_architecture("1/2", 64)
        assert params.row_blocks == 3
        assert params.col_blocks == 5
        assert params.bn_units_per_block == 5
        assert params.cn_units_per_block == 3
        assert params.info_bits_per_frame == 2 * 64

    def test_throughput_and_resources_scale_with_rate(self):
        low_rate = deepspace_architecture("1/2", 64)
        high_rate = deepspace_architecture("4/5", 64)
        tp_low = ThroughputModel(low_rate).point(18).throughput_bps
        tp_high = ThroughputModel(high_rate).point(18).throughput_bps
        # Higher-rate codes push more information bits per frame time.
        assert tp_high > tp_low
        assert estimate_resources(high_rate).aluts > estimate_resources(low_rate).aluts

    def test_multi_frame_configuration(self):
        single = deepspace_architecture("2/3", 64, processing_blocks=1)
        multi = deepspace_architecture("2/3", 64, processing_blocks=4)
        ratio = (
            ThroughputModel(multi).point(18).throughput_bps
            / ThroughputModel(single).point(18).throughput_bps
        )
        assert ratio == pytest.approx(4.0)
