"""Unit tests for repro.core.memory, repro.core.processing, repro.core.controller."""

import numpy as np
import pytest

from repro.core.configs import high_speed_architecture, low_cost_architecture
from repro.core.controller import AddressGenerator, ControllerModel
from repro.core.memory import (
    MemoryBank,
    MessageStorage,
    build_memory_map,
    compressed_check_word_bits,
)
from repro.core.processing import (
    BitNodeUnitModel,
    CheckNodeUnitModel,
    ProcessingBlockModel,
)


class TestMemoryBank:
    def test_total_bits(self):
        bank = MemoryBank(name="m", words=511, word_bits=6, banks=16)
        assert bank.total_bits == 511 * 6 * 16


class TestMemoryMap:
    def test_low_cost_totals_match_paper_table2(self):
        """Table 2 reports ~290k memory bits (50% of the Cyclone II)."""
        report = build_memory_map(low_cost_architecture())
        assert report.total_bits == pytest.approx(290_000, rel=0.08)
        # The message memory dominates: 32704 edges x 6 bits.
        assert report.by_name("messages").total_bits == 32704 * 6

    def test_high_speed_totals_match_paper_table3(self):
        """Table 3 reports ~1300k memory bits for the 8-frame decoder."""
        report = build_memory_map(high_speed_architecture())
        assert report.total_bits == pytest.approx(1_300_000, rel=0.10)

    def test_high_speed_scales_sublinearly(self):
        low = build_memory_map(low_cost_architecture()).total_bits
        high = build_memory_map(high_speed_architecture()).total_bits
        ratio = high / low
        # 8x the frames for well under 8x the memory (paper: "about four").
        assert 3.5 < ratio < 6.0

    def test_compressed_word_formula(self):
        # 2 magnitudes of 5 bits + 5 index bits + 1 product sign + 32 signs.
        assert compressed_check_word_bits(32, 6) == 2 * 5 + 5 + 1 + 32

    def test_full_edge_vs_compressed_message_memory(self):
        full = build_memory_map(
            low_cost_architecture(message_storage=MessageStorage.FULL_EDGE)
        )
        compressed = build_memory_map(
            low_cost_architecture(message_storage=MessageStorage.COMPRESSED_CHECK)
        )
        assert (
            compressed.by_name("messages").total_bits
            < full.by_name("messages").total_bits
        )

    def test_staging_buffer_optional(self):
        with_staging = build_memory_map(low_cost_architecture())
        without = build_memory_map(low_cost_architecture(separate_input_staging=False))
        assert with_staging.total_bits > without.total_bits

    def test_breakdown_sums_to_total(self):
        report = build_memory_map(low_cost_architecture())
        assert sum(report.breakdown().values()) == report.total_bits

    def test_unknown_memory_name(self):
        report = build_memory_map(low_cost_architecture())
        with pytest.raises(KeyError):
            report.by_name("does-not-exist")


class TestProcessingUnits:
    def test_bn_unit_width_accounts_for_growth(self):
        unit = BitNodeUnitModel(message_bits=6, bit_degree=4)
        assert unit.internal_width > 6
        assert unit.adder_operands == 5

    def test_cn_unit_index_bits(self):
        unit = CheckNodeUnitModel(message_bits=6, check_degree=32)
        assert unit.index_bits == 5
        assert unit.magnitude_bits == 5

    def test_costs_grow_with_width(self):
        narrow = BitNodeUnitModel(message_bits=4, bit_degree=4)
        wide = BitNodeUnitModel(message_bits=8, bit_degree=4)
        assert wide.aluts() > narrow.aluts()
        assert wide.registers() > narrow.registers()

    def test_cn_cost_grows_with_degree(self):
        small = CheckNodeUnitModel(message_bits=6, check_degree=8)
        big = CheckNodeUnitModel(message_bits=6, check_degree=64)
        assert big.aluts() > small.aluts()

    def test_block_totals(self):
        block = ProcessingBlockModel.from_parameters(low_cost_architecture())
        expected_aluts = (
            16 * block.bn_unit.aluts() + 2 * block.cn_unit.aluts() + block.interconnect_aluts()
        )
        assert block.aluts() == expected_aluts
        assert block.registers() > 0


class TestController:
    def test_address_generator_sweep_covers_bank(self):
        gen = AddressGenerator(circulant_size=31, first_row_positions=(3, 17))
        sweep = gen.sweep()
        assert sweep.shape == (31, 2)
        assert gen.covers_all_addresses()
        # Every address of the bank appears exactly twice (weight-2 circulant).
        counts = np.bincount(sweep.ravel(), minlength=31)
        assert (counts == 2).all()

    def test_address_generator_offset(self):
        gen = AddressGenerator(circulant_size=10, first_row_positions=(2, 7))
        assert gen.addresses(5).tolist() == [7, 2]
        with pytest.raises(ValueError):
            gen.addresses(10)

    def test_zero_weight_generator_covers_nothing(self):
        gen = AddressGenerator(circulant_size=5, first_row_positions=())
        assert not gen.covers_all_addresses()

    def test_controller_cost_positive_and_width_dependent(self):
        small = ControllerModel(circulant_size=31)
        large = ControllerModel(circulant_size=511)
        assert 0 < small.aluts() <= large.aluts()
        assert 0 < small.registers() <= large.registers()
