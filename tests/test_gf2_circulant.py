"""Unit tests for repro.gf2.circulant."""

import numpy as np
import pytest

from repro.gf2.circulant import Circulant, circulant_from_polynomial, identity_circulant
from repro.gf2.dense import gf2_matmul, gf2_matvec


class TestConstruction:
    def test_positions_normalized_and_sorted(self):
        c = Circulant(5, (7, 3))  # 7 mod 5 = 2
        assert c.positions == (2, 3)

    def test_duplicate_positions_rejected(self):
        with pytest.raises(ValueError):
            Circulant(5, (1, 6))  # 6 mod 5 == 1

    def test_zero_and_identity(self):
        assert Circulant.zero(4).is_zero
        assert identity_circulant(4).positions == (0,)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Circulant(0, ())

    def test_from_polynomial(self):
        c = circulant_from_polynomial([1, 0, 1], 5)
        assert c.positions == (0, 2)


class TestDenseConsistency:
    def test_first_row_matches_dense(self):
        c = Circulant(7, (1, 4))
        dense = c.to_dense()
        assert np.array_equal(dense[0], c.first_row())

    def test_rows_are_right_shifts(self):
        c = Circulant(6, (0, 2))
        dense = c.to_dense()
        for i in range(1, 6):
            assert np.array_equal(dense[i], np.roll(dense[i - 1], 1))

    def test_row_and_column_weights(self):
        c = Circulant(9, (2, 5, 7))
        dense = c.to_dense()
        assert (dense.sum(axis=0) == 3).all()
        assert (dense.sum(axis=1) == 3).all()

    def test_first_column_matches_dense(self):
        c = Circulant(8, (3, 6))
        assert np.array_equal(c.to_dense()[:, 0], c.first_column())

    def test_nonzero_coordinates_match_dense(self):
        c = Circulant(11, (1, 4, 9))
        rows, cols = c.nonzero_coordinates()
        dense = np.zeros((11, 11), dtype=np.uint8)
        dense[rows, cols] = 1
        assert np.array_equal(dense, c.to_dense())


class TestAlgebra:
    def test_addition_matches_dense(self):
        a, b = Circulant(7, (1, 3)), Circulant(7, (3, 5))
        expected = (a.to_dense() ^ b.to_dense())
        assert np.array_equal((a + b).to_dense(), expected)

    def test_product_matches_dense(self):
        a, b = Circulant(9, (0, 2)), Circulant(9, (1, 5))
        expected = gf2_matmul(a.to_dense(), b.to_dense())
        assert np.array_equal((a @ b).to_dense(), expected)

    def test_product_commutes(self):
        a, b = Circulant(9, (2, 4)), Circulant(9, (0, 7))
        assert (a @ b).positions == (b @ a).positions

    def test_transpose_matches_dense(self):
        c = Circulant(8, (1, 6))
        assert np.array_equal(c.transpose().to_dense(), c.to_dense().T)

    def test_inverse_roundtrip(self):
        # 1 + x + x^2 is coprime to x^7 - 1 (its roots have order 3, not 7).
        c = Circulant(7, (0, 1, 2))
        inv = c.inverse()
        assert (c @ inv).positions == (0,)

    def test_even_weight_never_invertible(self):
        # Any even-weight first row has x = 1 as a root, so it shares the
        # factor (x + 1) with x^b - 1 and cannot be inverted.
        with pytest.raises(ValueError):
            Circulant(7, (0, 3)).inverse()

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            Circulant(4, (0,)) + Circulant(5, (0,))


class TestMatvec:
    def test_matches_dense_matvec(self, rng):
        c = Circulant(13, (2, 7, 11))
        vec = rng.integers(0, 2, size=13, dtype=np.uint8)
        assert np.array_equal(c.matvec(vec), gf2_matvec(c.to_dense(), vec))

    def test_batch_matvec(self, rng):
        c = Circulant(10, (1, 3))
        batch = rng.integers(0, 2, size=(4, 10), dtype=np.uint8)
        out = c.matvec(batch)
        for i in range(4):
            assert np.array_equal(out[i], gf2_matvec(c.to_dense(), batch[i]))

    def test_wrong_length(self):
        with pytest.raises(ValueError):
            Circulant(5, (0,)).matvec(np.zeros(4, dtype=np.uint8))
