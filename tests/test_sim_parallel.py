"""Tests for the sharded parallel Monte-Carlo engine and shard planning."""

import numpy as np
import pytest

from repro.decode import NormalizedMinSumDecoder
from repro.sim import (
    EbN0Sweep,
    MonteCarloSimulator,
    ParallelMonteCarloEngine,
    SimulationConfig,
    iter_shard_sizes,
)


def _factory_for(code, iterations=8):
    def factory():
        return NormalizedMinSumDecoder(code, max_iterations=iterations)

    return factory


class TestShardSchedule:
    def test_constant_without_adaptive(self):
        config = SimulationConfig(max_frames=100, target_frame_errors=10, batch_frames=32)
        sizes = list(iter_shard_sizes(config))
        assert sizes == [32, 32, 32, 4]

    def test_sizes_sum_to_budget(self):
        config = SimulationConfig(
            max_frames=777, target_frame_errors=10, batch_frames=10, adaptive_batch=True
        )
        assert sum(iter_shard_sizes(config)) == 777

    def test_adaptive_growth_is_geometric_and_capped(self):
        config = SimulationConfig(
            max_frames=10_000,
            target_frame_errors=10,
            batch_frames=8,
            adaptive_batch=True,
            batch_growth=2.0,
            max_batch_frames=100,
        )
        sizes = list(iter_shard_sizes(config))
        assert sizes[:4] == [8, 16, 32, 64]
        assert max(sizes) == 100
        # Once at the cap the size stays there (apart from the final remnant).
        assert sizes[4:-1] == [100] * (len(sizes) - 5)
        assert sum(sizes) == 10_000

    def test_adaptive_cap_default(self):
        config = SimulationConfig(
            max_frames=10**6, target_frame_errors=10, batch_frames=4, adaptive_batch=True
        )
        assert config.effective_max_batch_frames() == 256
        assert max(iter_shard_sizes(config)) == 256

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(batch_growth=1.0)
        with pytest.raises(ValueError):
            SimulationConfig(batch_frames=16, max_batch_frames=8)


class TestParallelDeterminism:
    def test_run_point_matches_serial_for_any_worker_count(self, scaled_code):
        config = SimulationConfig(
            max_frames=60, target_frame_errors=6, batch_frames=10, all_zero_codeword=True
        )
        factory = _factory_for(scaled_code)
        serial = MonteCarloSimulator(
            scaled_code, factory(), config=config, rng=42
        ).run_point(2.0)
        assert serial.frame_errors >= 6  # the early-stop path is exercised
        for workers in (1, 2, 4):
            with ParallelMonteCarloEngine(
                scaled_code, factory, config=config, workers=workers
            ) as engine:
                point = engine.run_point(2.0, rng=42)
            assert point == serial

    def test_run_point_matches_serial_with_adaptive_batching(self, scaled_code):
        config = SimulationConfig(
            max_frames=80,
            target_frame_errors=50,
            batch_frames=5,
            all_zero_codeword=True,
            adaptive_batch=True,
            max_batch_frames=40,
        )
        factory = _factory_for(scaled_code)
        serial = MonteCarloSimulator(
            scaled_code, factory(), config=config, rng=9
        ).run_point(7.0)
        assert serial.frames == 80  # high SNR: budget exhausted, batches grew
        with ParallelMonteCarloEngine(
            scaled_code, factory, config=config, workers=2
        ) as engine:
            assert engine.run_point(7.0, rng=9) == serial

    def test_sweep_matches_serial(self, scaled_code):
        config = SimulationConfig(
            max_frames=40, target_frame_errors=5, batch_frames=10, all_zero_codeword=True
        )
        factory = _factory_for(scaled_code)
        grid = [2.0, 4.0, 6.0]
        serial = EbN0Sweep(scaled_code, factory, config=config, rng=11).run(grid)
        parallel = EbN0Sweep(
            scaled_code, factory, config=config, rng=11, workers=3
        ).run(grid)
        assert serial.points == parallel.points

    def test_run_overrides_constructor_workers(self, scaled_code):
        config = SimulationConfig(
            max_frames=20, target_frame_errors=5, batch_frames=10, all_zero_codeword=True
        )
        factory = _factory_for(scaled_code)
        sweep = EbN0Sweep(scaled_code, factory, config=config, rng=13, workers=2)
        parallel = sweep.run([3.0])
        serial = EbN0Sweep(scaled_code, factory, config=config, rng=13).run(
            [3.0], workers=None
        )
        assert parallel.points == serial.points


class TestParallelEngineBehaviour:
    def test_progress_reports_every_point(self, scaled_code):
        config = SimulationConfig(
            max_frames=20, target_frame_errors=5, batch_frames=10, all_zero_codeword=True
        )
        messages = []
        EbN0Sweep(
            scaled_code, _factory_for(scaled_code), config=config, rng=5, workers=2
        ).run([3.0, 5.0], progress=messages.append)
        assert len(messages) == 2
        assert all("Eb/N0" in m for m in messages)

    def test_empty_grid(self, scaled_code):
        with ParallelMonteCarloEngine(
            scaled_code, _factory_for(scaled_code), workers=2
        ) as engine:
            assert engine.run_sweep([]) == []

    def test_pool_is_reused_across_points(self, scaled_code):
        config = SimulationConfig(
            max_frames=10, target_frame_errors=5, batch_frames=5, all_zero_codeword=True
        )
        with ParallelMonteCarloEngine(
            scaled_code, _factory_for(scaled_code), config=config, workers=2
        ) as engine:
            engine.run_point(4.0, rng=1)
            pool = engine._pool
            engine.run_point(5.0, rng=1)
            assert engine._pool is pool
        assert engine._pool is None  # closed on exit

    def test_warmup_does_not_change_results(self, scaled_code):
        config = SimulationConfig(
            max_frames=20, target_frame_errors=5, batch_frames=10, all_zero_codeword=True
        )
        factory = _factory_for(scaled_code)
        serial = MonteCarloSimulator(
            scaled_code, factory(), config=config, rng=21
        ).run_point(3.0)
        with ParallelMonteCarloEngine(
            scaled_code, factory, config=config, workers=2
        ) as engine:
            engine.warmup()
            assert engine.run_point(3.0, rng=21) == serial

    def test_spawn_context_rejects_unpicklable_factory(self, scaled_code):
        import multiprocessing

        if "spawn" not in multiprocessing.get_all_start_methods():  # pragma: no cover
            pytest.skip("spawn start method unavailable")
        engine = ParallelMonteCarloEngine(
            scaled_code,
            _factory_for(scaled_code),  # closure: not picklable
            workers=2,
            mp_context="spawn",
        )
        with pytest.raises(TypeError, match="picklable"):
            engine._ensure_pool()
        engine.close()

    def test_shortened_code_random_data_parallel(self, scaled_code, scaled_encoder):
        from repro.codes.shortening import ShortenedCode

        shortened = ShortenedCode.from_encoder(
            scaled_code, scaled_encoder, info_bits=scaled_code.dimension - 8
        )
        config = SimulationConfig(max_frames=10, target_frame_errors=10, batch_frames=5)
        factory = _factory_for(scaled_code, iterations=10)
        serial = MonteCarloSimulator(
            shortened, factory(), config=config, rng=6
        ).run_point(6.0)
        with ParallelMonteCarloEngine(
            shortened, factory, config=config, workers=2
        ) as engine:
            parallel = engine.run_point(6.0, rng=6)
        assert parallel == serial
        assert parallel.bits == parallel.frames * shortened.transmitted_code_bits
