"""Tests for the sharded parallel Monte-Carlo engine and shard planning."""

import numpy as np
import pytest

from repro.decode import MinSumDecoder, NormalizedMinSumDecoder
from repro.sim import (
    EbN0Sweep,
    MonteCarloSimulator,
    ParallelMonteCarloEngine,
    PoolEntry,
    SharedWorkerPool,
    SimulationConfig,
    iter_shard_sizes,
)
from repro.sim.parallel import PointState
from repro.utils.rng import spawn_seed_sequences


def _factory_for(code, iterations=8):
    def factory():
        return NormalizedMinSumDecoder(code, max_iterations=iterations)

    return factory


class _ExplodingDecoder:
    """Raises on the first frame; module-level so it pickles under fork."""

    def decode(self, llrs):
        raise RuntimeError("exploding test decoder")


def _exploding_decoder_factory():
    return _ExplodingDecoder()


class TestShardSchedule:
    def test_constant_without_adaptive(self):
        config = SimulationConfig(max_frames=100, target_frame_errors=10, batch_frames=32)
        sizes = list(iter_shard_sizes(config))
        assert sizes == [32, 32, 32, 4]

    def test_sizes_sum_to_budget(self):
        config = SimulationConfig(
            max_frames=777, target_frame_errors=10, batch_frames=10, adaptive_batch=True
        )
        assert sum(iter_shard_sizes(config)) == 777

    def test_adaptive_growth_is_geometric_and_capped(self):
        config = SimulationConfig(
            max_frames=10_000,
            target_frame_errors=10,
            batch_frames=8,
            adaptive_batch=True,
            batch_growth=2.0,
            max_batch_frames=100,
        )
        sizes = list(iter_shard_sizes(config))
        assert sizes[:4] == [8, 16, 32, 64]
        assert max(sizes) == 100
        # Once at the cap the size stays there (apart from the final remnant).
        assert sizes[4:-1] == [100] * (len(sizes) - 5)
        assert sum(sizes) == 10_000

    def test_adaptive_cap_default(self):
        config = SimulationConfig(
            max_frames=10**6, target_frame_errors=10, batch_frames=4, adaptive_batch=True
        )
        assert config.effective_max_batch_frames() == 256
        assert max(iter_shard_sizes(config)) == 256

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(batch_growth=1.0)
        with pytest.raises(ValueError):
            SimulationConfig(batch_frames=16, max_batch_frames=8)


class TestParallelDeterminism:
    def test_run_point_matches_serial_for_any_worker_count(self, scaled_code):
        config = SimulationConfig(
            max_frames=60, target_frame_errors=6, batch_frames=10, all_zero_codeword=True
        )
        factory = _factory_for(scaled_code)
        serial = MonteCarloSimulator(
            scaled_code, factory(), config=config, rng=42
        ).run_point(2.0)
        assert serial.frame_errors >= 6  # the early-stop path is exercised
        for workers in (1, 2, 4):
            with ParallelMonteCarloEngine(
                scaled_code, factory, config=config, workers=workers
            ) as engine:
                point = engine.run_point(2.0, rng=42)
            assert point == serial

    def test_run_point_matches_serial_with_adaptive_batching(self, scaled_code):
        config = SimulationConfig(
            max_frames=80,
            target_frame_errors=50,
            batch_frames=5,
            all_zero_codeword=True,
            adaptive_batch=True,
            max_batch_frames=40,
        )
        factory = _factory_for(scaled_code)
        serial = MonteCarloSimulator(
            scaled_code, factory(), config=config, rng=9
        ).run_point(7.0)
        assert serial.frames == 80  # high SNR: budget exhausted, batches grew
        with ParallelMonteCarloEngine(
            scaled_code, factory, config=config, workers=2
        ) as engine:
            assert engine.run_point(7.0, rng=9) == serial

    def test_sweep_matches_serial(self, scaled_code):
        config = SimulationConfig(
            max_frames=40, target_frame_errors=5, batch_frames=10, all_zero_codeword=True
        )
        factory = _factory_for(scaled_code)
        grid = [2.0, 4.0, 6.0]
        serial = EbN0Sweep(scaled_code, factory, config=config, rng=11).run(grid)
        parallel = EbN0Sweep(
            scaled_code, factory, config=config, rng=11, workers=3
        ).run(grid)
        assert serial.points == parallel.points

    def test_run_overrides_constructor_workers(self, scaled_code):
        config = SimulationConfig(
            max_frames=20, target_frame_errors=5, batch_frames=10, all_zero_codeword=True
        )
        factory = _factory_for(scaled_code)
        sweep = EbN0Sweep(scaled_code, factory, config=config, rng=13, workers=2)
        parallel = sweep.run([3.0])
        serial = EbN0Sweep(scaled_code, factory, config=config, rng=13).run(
            [3.0], workers=None
        )
        assert parallel.points == serial.points


class TestParallelEngineBehaviour:
    def test_progress_reports_every_point(self, scaled_code):
        config = SimulationConfig(
            max_frames=20, target_frame_errors=5, batch_frames=10, all_zero_codeword=True
        )
        messages = []
        EbN0Sweep(
            scaled_code, _factory_for(scaled_code), config=config, rng=5, workers=2
        ).run([3.0, 5.0], progress=messages.append)
        assert len(messages) == 2
        assert all("Eb/N0" in m for m in messages)

    def test_empty_grid(self, scaled_code):
        with ParallelMonteCarloEngine(
            scaled_code, _factory_for(scaled_code), workers=2
        ) as engine:
            assert engine.run_sweep([]) == []

    def test_pool_is_reused_across_points(self, scaled_code):
        config = SimulationConfig(
            max_frames=10, target_frame_errors=5, batch_frames=5, all_zero_codeword=True
        )
        with ParallelMonteCarloEngine(
            scaled_code, _factory_for(scaled_code), config=config, workers=2
        ) as engine:
            engine.run_point(4.0, rng=1)
            pool = engine._pool
            engine.run_point(5.0, rng=1)
            assert engine._pool is pool
        assert engine._pool is None  # closed on exit

    def test_warmup_does_not_change_results(self, scaled_code):
        config = SimulationConfig(
            max_frames=20, target_frame_errors=5, batch_frames=10, all_zero_codeword=True
        )
        factory = _factory_for(scaled_code)
        serial = MonteCarloSimulator(
            scaled_code, factory(), config=config, rng=21
        ).run_point(3.0)
        with ParallelMonteCarloEngine(
            scaled_code, factory, config=config, workers=2
        ) as engine:
            engine.warmup()
            assert engine.run_point(3.0, rng=21) == serial

    def test_spawn_context_rejects_unpicklable_factory(self, scaled_code):
        import multiprocessing

        if "spawn" not in multiprocessing.get_all_start_methods():  # pragma: no cover
            pytest.skip("spawn start method unavailable")
        engine = ParallelMonteCarloEngine(
            scaled_code,
            _factory_for(scaled_code),  # closure: not picklable
            workers=2,
            mp_context="spawn",
        )
        with pytest.raises(TypeError, match="picklable"):
            engine._ensure_pool()
        engine.close()

    def test_shortened_code_random_data_parallel(self, scaled_code, scaled_encoder):
        from repro.codes.shortening import ShortenedCode

        shortened = ShortenedCode.from_encoder(
            scaled_code, scaled_encoder, info_bits=scaled_code.dimension - 8
        )
        config = SimulationConfig(max_frames=10, target_frame_errors=10, batch_frames=5)
        factory = _factory_for(scaled_code, iterations=10)
        serial = MonteCarloSimulator(
            shortened, factory(), config=config, rng=6
        ).run_point(6.0)
        with ParallelMonteCarloEngine(
            shortened, factory, config=config, workers=2
        ) as engine:
            parallel = engine.run_point(6.0, rng=6)
        assert parallel == serial
        assert parallel.bits == parallel.frames * shortened.transmitted_code_bits


class TestSharedWorkerPool:
    """The multi-experiment pool underneath the campaign scheduler."""

    def test_mixed_entries_reproduce_their_serial_engines(self, scaled_code):
        config_a = SimulationConfig(
            max_frames=40, target_frame_errors=6, batch_frames=10, all_zero_codeword=True
        )
        config_b = SimulationConfig(
            max_frames=30, target_frame_errors=4, batch_frames=5, all_zero_codeword=True
        )
        entries = {
            "nms": PoolEntry(scaled_code, _factory_for(scaled_code), config_a),
            "ms": PoolEntry(
                scaled_code,
                lambda: MinSumDecoder(scaled_code, max_iterations=8),
                config_b,
            ),
        }
        seeds = spawn_seed_sequences(17, 4)
        states = [
            PointState("nms", 2.0, seeds[0], config_a),
            PointState("ms", 2.0, seeds[1], config_b),
            PointState("nms", 4.0, seeds[2], config_a),
            PointState("ms", 4.0, seeds[3], config_b),
        ]
        with SharedWorkerPool(entries, workers=3) as pool:
            points = pool.run_states(states)
        # Each point must match the serial engine for its own entry+seed.
        seeds = spawn_seed_sequences(17, 4)
        serial_nms = MonteCarloSimulator(
            scaled_code, _factory_for(scaled_code)(), config=config_a, rng=0
        )
        serial_ms = MonteCarloSimulator(
            scaled_code, MinSumDecoder(scaled_code, max_iterations=8), config=config_b, rng=0
        )
        assert points[0] == serial_nms.run_point(2.0, rng=seeds[0])
        assert points[1] == serial_ms.run_point(2.0, rng=seeds[1])
        assert points[2] == serial_nms.run_point(4.0, rng=seeds[2])
        assert points[3] == serial_ms.run_point(4.0, rng=seeds[3])

    def test_on_point_receives_state_and_tag(self, scaled_code):
        config = SimulationConfig(
            max_frames=10, target_frame_errors=50, batch_frames=5, all_zero_codeword=True
        )
        entries = {"only": PoolEntry(scaled_code, _factory_for(scaled_code), config)}
        (seed,) = spawn_seed_sequences(1, 1)
        states = [PointState("only", 3.0, seed, config, tag={"marker": 42})]
        seen = []
        with SharedWorkerPool(entries, workers=2) as pool:
            pool.run_states(states, on_point=lambda s, p: seen.append((s.tag, p.frames)))
        assert seen == [({"marker": 42}, 10)]

    def test_unknown_state_key_rejected(self, scaled_code):
        config = SimulationConfig(max_frames=10, target_frame_errors=5, batch_frames=5)
        entries = {"only": PoolEntry(scaled_code, _factory_for(scaled_code), config)}
        (seed,) = spawn_seed_sequences(1, 1)
        with SharedWorkerPool(entries, workers=1) as pool:
            with pytest.raises(KeyError):
                pool.run_states([PointState("other", 3.0, seed, config)])

    def test_empty_entries_rejected(self):
        with pytest.raises(ValueError):
            SharedWorkerPool({})

    def test_worker_exception_surfaces_without_deadlock(self, scaled_code):
        """A worker raising mid-shard must propagate, not hang the pool.

        Regression coverage for the PR 5 teardown semantics: the error
        re-raises in the parent when the failed shard's result is folded,
        the ``with`` block exits through the force/terminate path (an
        exception must not wait for speculative shards), and ``close`` is
        still idempotent afterwards.  A deadlock here would hang the whole
        suite, which is exactly the failure mode being pinned.
        """
        config = SimulationConfig(
            max_frames=40, target_frame_errors=10, batch_frames=5,
            all_zero_codeword=True,
        )
        entries = {
            "boom": PoolEntry(scaled_code, _exploding_decoder_factory, config)
        }
        (seed,) = spawn_seed_sequences(99, 1)
        pool = SharedWorkerPool(entries, workers=2)
        with pool:
            with pytest.raises(RuntimeError, match="exploding test decoder"):
                pool.run_states([PointState("boom", 3.0, seed, config)])
        assert pool._pool is None  # torn down by the exception exit
        pool.close()  # idempotent after the force path


class TestSweepResume:
    def test_resumed_sweep_is_bit_identical(self, scaled_code):
        config = SimulationConfig(
            max_frames=30, target_frame_errors=5, batch_frames=10, all_zero_codeword=True
        )
        factory = _factory_for(scaled_code)
        grid = [2.0, 4.0, 6.0]
        full = EbN0Sweep(scaled_code, factory, config=config, rng=23).run(
            grid, label="nms", metadata={"alpha": 1.25}
        )
        # A killed run of the same grid leaves behind a subset of the points
        # (each measured at its own grid position).
        from repro.sim import SimulationCurve

        partial = SimulationCurve(label="nms", metadata={"alpha": 1.25})
        partial.add(full.points[0])
        partial.add(full.points[2])
        # Resume fills in the missing middle point — serially and pooled.
        for workers in (None, 2):
            resumed = EbN0Sweep(
                scaled_code, factory, config=config, rng=23, workers=workers
            ).run(grid, resume=partial)
            assert resumed.points == full.points
            assert resumed.label == "nms"
            assert resumed.metadata == {"alpha": 1.25}

    def test_duplicate_grid_values_simulated_once(self, scaled_code):
        config = SimulationConfig(
            max_frames=20, target_frame_errors=5, batch_frames=10, all_zero_codeword=True
        )
        factory = _factory_for(scaled_code)
        deduped = EbN0Sweep(scaled_code, factory, config=config, rng=3).run([3.0, 5.0])
        duplicated = EbN0Sweep(scaled_code, factory, config=config, rng=3).run(
            [3.0, 5.0, 3.0]
        )
        assert duplicated.points == deduped.points

    def test_resume_with_everything_done_runs_nothing(self, scaled_code):
        config = SimulationConfig(
            max_frames=20, target_frame_errors=5, batch_frames=10, all_zero_codeword=True
        )
        factory = _factory_for(scaled_code)
        full = EbN0Sweep(scaled_code, factory, config=config, rng=5).run([3.0])
        calls = []
        resumed = EbN0Sweep(scaled_code, factory, config=config, rng=5).run(
            [3.0], resume=full, progress=calls.append
        )
        assert calls == []
        assert resumed.points == full.points
