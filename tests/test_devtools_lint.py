"""The determinism linter: every REP1xx rule, noqa, baselines, rng warning.

Each rule is exercised through a *paired fixture*: a ``repNNN_bad.py`` file
that must fire exactly that rule and a ``repNNN_good.py`` sibling showing
the deterministic spelling, which must lint clean.  The fixtures are fed
through :func:`repro.devtools.lint_source` in-process — the linter never
imports them.
"""

import json
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.devtools import (
    ALL_RULES,
    Baseline,
    DEFAULT_CONFIG,
    DETERMINISM_RULES,
    FLOW_RULES,
    SCHEMA_RULES,
    Violation,
    apply_baseline,
    iter_python_files,
    lint_paths,
    lint_source,
    rule,
)
from repro.utils.rng import UnseededRNGWarning, as_seed_sequence, ensure_rng

FIXTURES = Path(__file__).parent / "fixtures" / "lint"

#: The path each fixture is linted under.  REP107 only applies inside the
#: persistence scope, so its fixtures are presented as the campaign store;
#: REP110 only applies inside repro.obs, so its fixtures are presented as a
#: telemetry consumer module; REP111 only applies inside the batched
#: decoder kernels.
_LINT_PATHS = {
    "REP107": "src/repro/sim/campaign/store.py",
    "REP110": "src/repro/obs/consumers.py",
    "REP111": "src/repro/decode/batched.py",
}

RULE_CODES = [r.code for r in DETERMINISM_RULES]


def _lint_fixture(code: str, flavour: str):
    name = f"{code.lower()}_{flavour}.py"
    source = (FIXTURES / name).read_text(encoding="utf-8")
    path = _LINT_PATHS.get(code, f"src/repro/example/{name}")
    return lint_source(source, path)


# --------------------------------------------------------------------------- #
# The rule catalog itself
# --------------------------------------------------------------------------- #
def test_catalog_has_at_least_eight_determinism_rules():
    assert len(DETERMINISM_RULES) >= 8
    assert len(SCHEMA_RULES) >= 4


def test_catalog_codes_are_unique_and_looked_up():
    assert len(ALL_RULES) == (
        len(DETERMINISM_RULES) + len(SCHEMA_RULES) + len(FLOW_RULES)
    )
    for code in RULE_CODES:
        assert rule(code).code == code
    with pytest.raises(KeyError):
        rule("REP999")


def test_every_rule_has_rationale():
    for item in ALL_RULES.values():
        assert item.summary and item.rationale


# --------------------------------------------------------------------------- #
# Paired fixtures: every rule fires on bad, stays silent on good
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("code", RULE_CODES)
def test_bad_fixture_fires_rule(code):
    violations = _lint_fixture(code, "bad")
    assert violations, f"{code} bad fixture produced no violations"
    assert {v.rule for v in violations} == {code}


@pytest.mark.parametrize("code", RULE_CODES)
def test_good_fixture_is_clean(code):
    assert _lint_fixture(code, "good") == []


def test_bad_fixtures_fire_multiple_forms():
    """Each bad fixture covers more than one spelling of its hazard."""
    for code in ("REP101", "REP102", "REP103", "REP104", "REP105",
                 "REP106", "REP107", "REP108", "REP109", "REP110", "REP111"):
        assert len(_lint_fixture(code, "bad")) >= 2, code


# --------------------------------------------------------------------------- #
# Targeted rule behaviour
# --------------------------------------------------------------------------- #
def test_rep103_whitelisted_in_rng_module():
    source = "import numpy as np\nrng = np.random.default_rng()\n"
    assert lint_source(source, "src/repro/utils/rng.py") == []
    assert lint_source(source, "src/repro/sim/montecarlo.py") != []


def test_rep103_seed_keyword_counts_as_seeded():
    clean = "from numpy.random import default_rng\nrng = default_rng(seed=3)\n"
    assert lint_source(clean, "src/repro/x.py") == []


def test_rep104_allows_perf_counter():
    source = "import time\nelapsed = time.perf_counter()\n"
    assert lint_source(source, "src/repro/x.py") == []


def test_rep110_only_in_obs_scope():
    source = "import time\nelapsed = time.perf_counter()\n"
    assert lint_source(source, "src/repro/sim/montecarlo.py") == []
    scoped = lint_source(source, "src/repro/obs/metrics.py")
    assert [v.rule for v in scoped] == ["REP110"]


def test_obs_clock_chokepoint_is_whitelisted():
    source = (
        "import time\n"
        "def wall_time():\n"
        "    return time.time()\n"
        "def monotonic():\n"
        "    return time.perf_counter()\n"
    )
    assert lint_source(source, "src/repro/obs/clock.py") == []


def test_rep110_supersedes_rep104_wall_branch_in_obs():
    """time.time() in obs fires exactly REP110 — never a REP104 double."""
    source = "import time\nstamp = time.time()\n"
    assert [v.rule for v in lint_source(source, "src/repro/obs/events.py")] == [
        "REP110"
    ]


def test_rep104_datetime_branch_still_active_in_obs():
    source = "from datetime import datetime\nwhen = datetime.now()\n"
    assert [v.rule for v in lint_source(source, "src/repro/obs/events.py")] == [
        "REP104"
    ]


def test_rep111_scoped_to_batched_kernels():
    """The same per-frame loop is fine outside repro/decode/batched.py."""
    source = (
        "def decode_all(decoder, llrs):\n"
        "    return [decoder.decode(frame) for frame in llrs]\n"
        "def tally(llrs):\n"
        "    out = 0\n"
        "    for frame in llrs:\n"
        "        out += int(frame.sum())\n"
        "    return out\n"
    )
    assert lint_source(source, "src/repro/decode/base.py") == []
    scoped = lint_source(source, "src/repro/decode/batched.py")
    # Both spellings fire: the comprehension and the for statement.
    assert [v.rule for v in scoped] == ["REP111", "REP111"]


def test_rep111_iteration_and_layer_loops_stay_clean():
    """O(iterations) loops are the batched kernel's legitimate structure."""
    source = (
        "def run(self, work):\n"
        "    for iteration in range(1, self.max_iterations + 1):\n"
        "        for layer in self._layers:\n"
        "            work = work + 1\n"
        "    return work\n"
    )
    assert lint_source(source, "src/repro/decode/batched.py") == []


def test_rep111_flags_shape_zero_range_loops():
    source = (
        "def per_row(posterior):\n"
        "    for index in range(posterior.shape[0]):\n"
        "        posterior[index] *= 2\n"
    )
    scoped = lint_source(source, "src/repro/decode/batched.py")
    assert [v.rule for v in scoped] == ["REP111"]


def test_rep106_ignores_integer_comparison():
    source = "def f(n):\n    return n == 0\n"
    assert lint_source(source, "src/repro/x.py") == []


def test_rep107_only_in_persistence_scope():
    source = "def f(p, t):\n    open(p, 'w').write(t)\n"
    assert lint_source(source, "src/repro/analysis/report.py") == []
    scoped = lint_source(source, "src/repro/sim/results.py")
    assert [v.rule for v in scoped] == ["REP107"]


def test_rep107_read_mode_is_fine():
    source = "def f(p):\n    return open(p).read()\n"
    assert lint_source(source, "src/repro/sim/results.py") == []


#: Newly audited persistence paths (PR 10 scope widening), each with its
#: own paired fixture: the raw-write spellings that must now fire there
#: and the atomic (or audited-append) spelling that must stay clean.
_PERSISTENCE_FIXTURES = {
    "rep107_pool": "src/repro/fabric/pool.py",
    "rep107_metrics": "src/repro/obs/metrics.py",
    "rep107_events": "src/repro/obs/events.py",
}


@pytest.mark.parametrize("stem", sorted(_PERSISTENCE_FIXTURES))
def test_rep107_widened_scope_bad_fixture_fires(stem):
    source = (FIXTURES / f"{stem}_bad.py").read_text(encoding="utf-8")
    violations = lint_source(source, _PERSISTENCE_FIXTURES[stem])
    assert len(violations) >= 2, stem
    assert {v.rule for v in violations} == {"REP107"}


@pytest.mark.parametrize("stem", sorted(_PERSISTENCE_FIXTURES))
def test_rep107_widened_scope_good_fixture_is_clean(stem):
    source = (FIXTURES / f"{stem}_good.py").read_text(encoding="utf-8")
    assert lint_source(source, _PERSISTENCE_FIXTURES[stem]) == []


def test_rep107_widened_scope_is_path_sensitive():
    """The same raw write stays legal outside the persistence scope."""
    source = (FIXTURES / "rep107_pool_bad.py").read_text(encoding="utf-8")
    assert lint_source(source, "src/repro/analysis/report.py") == []


def test_syntax_error_raises():
    with pytest.raises(SyntaxError):
        lint_source("def broken(:\n", "src/repro/x.py")


# --------------------------------------------------------------------------- #
# noqa suppression
# --------------------------------------------------------------------------- #
def test_noqa_with_code_suppresses():
    source = "import numpy as np\nr = np.random.default_rng()  # repro: noqa[REP103]\n"
    assert lint_source(source, "src/repro/x.py") == []


def test_bare_noqa_suppresses_everything():
    source = "import numpy as np\nr = np.random.default_rng()  # repro: noqa\n"
    assert lint_source(source, "src/repro/x.py") == []


def test_noqa_with_other_code_does_not_suppress():
    source = "import numpy as np\nr = np.random.default_rng()  # repro: noqa[REP101]\n"
    assert [v.rule for v in lint_source(source, "src/repro/x.py")] == ["REP103"]


def test_noqa_list_of_codes():
    source = (
        "import numpy as np\n"
        "r = np.random.default_rng()  # repro: noqa[REP101, REP103]\n"
    )
    assert lint_source(source, "src/repro/x.py") == []


# --------------------------------------------------------------------------- #
# Config: rule selection
# --------------------------------------------------------------------------- #
def test_with_select_restricts_rules():
    config = DEFAULT_CONFIG.with_select(["REP102"])
    source = "import random\nimport numpy as np\nr = np.random.default_rng()\n"
    assert [v.rule for v in lint_source(source, "src/repro/x.py", config=config)] == [
        "REP102"
    ]


def test_with_select_rejects_unknown_codes():
    with pytest.raises(ValueError, match="REP777"):
        DEFAULT_CONFIG.with_select(["REP777"])


# --------------------------------------------------------------------------- #
# Files and paths
# --------------------------------------------------------------------------- #
def test_iter_python_files_missing_path_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        list(iter_python_files([tmp_path / "nope"]))


def test_lint_paths_reports_relative_posix(tmp_path):
    bad = tmp_path / "pkg" / "mod.py"
    bad.parent.mkdir()
    bad.write_text("import random\n")
    violations = lint_paths([tmp_path], root=tmp_path)
    assert [v.path for v in violations] == ["pkg/mod.py"]
    assert [v.rule for v in violations] == ["REP102"]


# --------------------------------------------------------------------------- #
# Baselines
# --------------------------------------------------------------------------- #
def _violation(path="a.py", rule_code="REP102", snippet="import random"):
    return Violation(rule_code, path, 1, 0, "msg", snippet)


def test_baseline_roundtrip_and_split(tmp_path):
    known = _violation()
    fresh = _violation(snippet="from random import shuffle")
    baseline_path = tmp_path / "baseline.json"
    Baseline.from_violations([known]).save(baseline_path)

    new, matched = apply_baseline([known, fresh], baseline_path)
    assert matched == [known]
    assert new == [fresh]


def test_baseline_is_line_number_independent(tmp_path):
    path = tmp_path / "baseline.json"
    Baseline.from_violations([_violation()]).save(path)
    moved = Violation("REP102", "a.py", 99, 4, "msg", "import random")
    new, matched = apply_baseline([moved], path)
    assert new == [] and matched == [moved]


def test_baseline_multiset_budget(tmp_path):
    path = tmp_path / "baseline.json"
    Baseline.from_violations([_violation()]).save(path)
    # The same identity twice: one absorbed, the duplicate is new debt.
    first, second = _violation(), _violation()
    new, matched = apply_baseline([first, second], path)
    assert len(matched) == 1 and len(new) == 1


def test_baseline_rejects_unknown_format(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"format": "other", "violations": []}))
    with pytest.raises(ValueError):
        Baseline.load(path)


# --------------------------------------------------------------------------- #
# The library itself stays clean (the CI gate, in-process)
# --------------------------------------------------------------------------- #
def test_src_repro_has_no_new_violations():
    repo_root = Path(__file__).parents[1]
    violations = lint_paths([repo_root / "src" / "repro"], root=repo_root)
    baseline = repo_root / ".repro-lint-baseline.json"
    if baseline.exists():
        violations, _ = apply_baseline(violations, baseline)
    assert violations == [], "\n".join(v.render() for v in violations)


# --------------------------------------------------------------------------- #
# The unseeded-RNG fallback warns (the REP103 runtime chokepoint)
# --------------------------------------------------------------------------- #
def test_ensure_rng_none_warns():
    with pytest.warns(UnseededRNGWarning):
        ensure_rng(None)


def test_as_seed_sequence_none_warns():
    with pytest.warns(UnseededRNGWarning):
        as_seed_sequence(None)


def test_seeded_calls_do_not_warn():
    with warnings.catch_warnings():
        warnings.simplefilter("error", UnseededRNGWarning)
        ensure_rng(123)
        ensure_rng(np.random.default_rng(5))
        as_seed_sequence(np.random.SeedSequence(7))
