"""Unit tests for repro.gf2.dense."""

import numpy as np
import pytest

from repro.gf2.dense import (
    gf2_inverse,
    gf2_matmul,
    gf2_matvec,
    gf2_null_space,
    gf2_rank,
    gf2_row_reduce,
    gf2_solve,
    is_binary_matrix,
)


class TestBasics:
    def test_is_binary_matrix(self):
        assert is_binary_matrix([[0, 1], [1, 0]])
        assert not is_binary_matrix([[0, 2]])

    def test_matmul_mod2(self):
        a = np.array([[1, 1], [0, 1]], dtype=np.uint8)
        b = np.array([[1, 0], [1, 1]], dtype=np.uint8)
        assert gf2_matmul(a, b).tolist() == [[0, 1], [1, 1]]

    def test_matvec_single_and_batch(self):
        h = np.array([[1, 1, 0], [0, 1, 1]], dtype=np.uint8)
        v = np.array([1, 1, 0], dtype=np.uint8)
        assert gf2_matvec(h, v).tolist() == [0, 1]
        batch = np.array([[1, 1, 0], [1, 0, 1]], dtype=np.uint8)
        assert gf2_matvec(h, batch).tolist() == [[0, 1], [1, 1]]

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            gf2_matmul([[2]], [[1]])


class TestRowReduceAndRank:
    def test_identity_rank(self):
        assert gf2_rank(np.eye(5, dtype=np.uint8)) == 5

    def test_dependent_rows(self):
        m = np.array([[1, 0, 1], [0, 1, 1], [1, 1, 0]], dtype=np.uint8)
        # Third row is the sum of the first two.
        assert gf2_rank(m) == 2

    def test_rref_pivots_are_unit_columns(self, rng):
        m = rng.integers(0, 2, size=(6, 10), dtype=np.uint8)
        rref, pivots = gf2_row_reduce(m)
        for row, col in enumerate(pivots):
            column = rref[:, col]
            assert column[row] == 1
            assert column.sum() == 1

    def test_rank_invariant_under_row_permutation(self, rng):
        m = rng.integers(0, 2, size=(8, 12), dtype=np.uint8)
        perm = rng.permutation(8)
        assert gf2_rank(m) == gf2_rank(m[perm])


class TestNullSpace:
    def test_null_space_annihilated(self, rng):
        m = rng.integers(0, 2, size=(5, 12), dtype=np.uint8)
        basis = gf2_null_space(m)
        assert basis.shape[0] == 12 - gf2_rank(m)
        for row in basis:
            assert not gf2_matvec(m, row).any()

    def test_null_space_rows_independent(self, rng):
        m = rng.integers(0, 2, size=(4, 10), dtype=np.uint8)
        basis = gf2_null_space(m)
        assert gf2_rank(basis) == basis.shape[0]

    def test_full_rank_square_has_trivial_null_space(self):
        assert gf2_null_space(np.eye(4, dtype=np.uint8)).shape[0] == 0


class TestSolve:
    def test_solution_satisfies_system(self, rng):
        m = rng.integers(0, 2, size=(6, 9), dtype=np.uint8)
        x_true = rng.integers(0, 2, size=9, dtype=np.uint8)
        rhs = gf2_matvec(m, x_true)
        x = gf2_solve(m, rhs)
        assert x is not None
        assert np.array_equal(gf2_matvec(m, x), rhs)

    def test_inconsistent_system_returns_none(self):
        m = np.array([[1, 0], [1, 0]], dtype=np.uint8)
        rhs = np.array([0, 1], dtype=np.uint8)
        assert gf2_solve(m, rhs) is None

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            gf2_solve(np.eye(3, dtype=np.uint8), np.array([1, 0], dtype=np.uint8))


class TestInverse:
    def test_inverse_roundtrip(self):
        m = np.array([[1, 1, 0], [0, 1, 1], [0, 0, 1]], dtype=np.uint8)
        inv = gf2_inverse(m)
        assert np.array_equal(gf2_matmul(m, inv), np.eye(3, dtype=np.uint8))

    def test_singular_raises(self):
        m = np.array([[1, 1], [1, 1]], dtype=np.uint8)
        with pytest.raises(ValueError):
            gf2_inverse(m)

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            gf2_inverse(np.zeros((2, 3), dtype=np.uint8))
