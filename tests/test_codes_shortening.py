"""Unit tests for repro.codes.shortening."""

import numpy as np
import pytest

from repro.codes.shortening import ShortenedCode
from repro.encode import SystematicEncoder


@pytest.fixture(scope="module")
def shortened(request):
    code = request.getfixturevalue("scaled_code")
    # Shorten by 10 information bits and pad the frame by 2.
    info_bits = code.dimension - 10
    frame_length = code.block_length - 10 + 2
    return ShortenedCode(code, info_bits=info_bits, frame_length=frame_length)


class TestDimensions:
    def test_counts(self, scaled_code, shortened):
        assert shortened.num_shortened == 10
        assert shortened.num_pad == 2
        assert shortened.transmitted_code_bits == scaled_code.block_length - 10
        assert shortened.frame_length == scaled_code.block_length - 8
        assert shortened.info_bits == scaled_code.dimension - 10

    def test_rate(self, shortened):
        assert shortened.rate == pytest.approx(
            shortened.info_bits / shortened.frame_length
        )

    def test_invalid_info_bits(self, scaled_code):
        with pytest.raises(ValueError):
            ShortenedCode(scaled_code, info_bits=scaled_code.dimension + 1)
        with pytest.raises(ValueError):
            ShortenedCode(scaled_code, info_bits=0)

    def test_frame_too_short(self, scaled_code):
        with pytest.raises(ValueError):
            ShortenedCode(
                scaled_code,
                info_bits=scaled_code.dimension - 5,
                frame_length=scaled_code.block_length - 10,
            )

    def test_explicit_positions_validated(self, scaled_code):
        with pytest.raises(ValueError):
            ShortenedCode(
                scaled_code,
                info_bits=scaled_code.dimension - 2,
                shortened_positions=[0, 0],  # not enough distinct positions
            )


class TestIndexConversions:
    def test_expand_extract_roundtrip(self, shortened, rng):
        payload = rng.integers(0, 2, size=shortened.transmitted_code_bits, dtype=np.uint8)
        base = shortened.expand_to_base(payload)
        assert base.shape[-1] == shortened.base_code.block_length
        assert (base[shortened.shortened_positions()] == 0).all()
        assert np.array_equal(shortened.extract_transmitted(base), payload)

    def test_frame_roundtrip(self, shortened, rng):
        payload = rng.integers(0, 2, size=shortened.transmitted_code_bits, dtype=np.uint8)
        frame = shortened.build_frame(payload)
        assert frame.shape[-1] == shortened.frame_length
        assert np.array_equal(shortened.strip_frame(frame), payload)

    def test_batch_conversion(self, shortened, rng):
        payload = rng.integers(0, 2, size=(3, shortened.transmitted_code_bits), dtype=np.uint8)
        base = shortened.expand_to_base(payload)
        assert base.shape == (3, shortened.base_code.block_length)

    def test_llr_mapping(self, shortened, rng):
        frame_llrs = rng.normal(size=shortened.frame_length)
        base_llrs = shortened.base_llrs_from_frame_llrs(frame_llrs, known_llr=50.0)
        assert base_llrs.shape[-1] == shortened.base_code.block_length
        assert (base_llrs[shortened.shortened_positions()] == 50.0).all()
        transmitted = base_llrs[shortened.transmitted_positions()]
        assert np.array_equal(transmitted, frame_llrs[: shortened.transmitted_code_bits])

    def test_wrong_lengths_raise(self, shortened):
        with pytest.raises(ValueError):
            shortened.expand_to_base(np.zeros(3, dtype=np.uint8))
        with pytest.raises(ValueError):
            shortened.strip_frame(np.zeros(3, dtype=np.uint8))
        with pytest.raises(ValueError):
            shortened.base_llrs_from_frame_llrs(np.zeros(3))


class TestFromEncoder:
    def test_positions_are_information_positions(self, scaled_code, scaled_encoder):
        shortened = ShortenedCode.from_encoder(
            scaled_code, scaled_encoder, info_bits=scaled_code.dimension - 7
        )
        info_positions = set(scaled_encoder.information_positions.tolist())
        assert set(shortened.shortened_positions().tolist()) <= info_positions

    def test_shortened_codewords_stay_valid(self, scaled_code, scaled_encoder, rng):
        shortened = ShortenedCode.from_encoder(
            scaled_code, scaled_encoder, info_bits=scaled_code.dimension - 7
        )
        info = rng.integers(0, 2, size=scaled_encoder.dimension, dtype=np.uint8)
        forced = np.isin(scaled_encoder.information_positions, shortened.shortened_positions())
        info[forced] = 0
        codeword = scaled_encoder.encode(info)
        assert scaled_code.is_codeword(codeword)
        assert (codeword[shortened.shortened_positions()] == 0).all()
