"""Property-based tests for encoders, shortening, puncturing and throughput.

Complements ``test_property_based.py`` with invariants of the higher-level
code machinery: every encoder output is a codeword, shortening/puncturing
index conversions are lossless, and the throughput model behaves
monotonically in its inputs.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.codes.parity_check import ParityCheckMatrix
from repro.codes.puncturing import PuncturedCode
from repro.codes.shortening import ShortenedCode
from repro.core.configs import low_cost_architecture
from repro.core.throughput import ThroughputModel
from repro.encode.systematic import SystematicEncoder

SETTINGS = settings(
    max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def _random_pcm(rng: np.random.Generator) -> ParityCheckMatrix:
    """A random small parity-check matrix with no all-zero columns."""
    rows = int(rng.integers(2, 6))
    cols = int(rng.integers(rows + 1, rows + 10))
    while True:
        matrix = rng.integers(0, 2, size=(rows, cols), dtype=np.uint8)
        if (matrix.sum(axis=0) > 0).all() and (matrix.sum(axis=1) > 0).all():
            return ParityCheckMatrix(matrix)


class TestEncoderProperties:
    @SETTINGS
    @given(st.integers(0, 2**32 - 1))
    def test_every_encoded_word_is_a_codeword(self, seed):
        rng = np.random.default_rng(seed)
        pcm = _random_pcm(rng)
        encoder = SystematicEncoder(pcm)
        info = rng.integers(0, 2, size=(5, encoder.dimension), dtype=np.uint8)
        codewords = encoder.encode(info)
        assert bool(np.all(pcm.is_codeword(codewords)))

    @SETTINGS
    @given(st.integers(0, 2**32 - 1))
    def test_information_extraction_inverts_encoding(self, seed):
        rng = np.random.default_rng(seed)
        pcm = _random_pcm(rng)
        encoder = SystematicEncoder(pcm)
        info = rng.integers(0, 2, size=encoder.dimension, dtype=np.uint8)
        assert np.array_equal(encoder.extract_information(encoder.encode(info)), info)

    @SETTINGS
    @given(st.integers(0, 2**32 - 1))
    def test_encoding_linearity(self, seed):
        rng = np.random.default_rng(seed)
        pcm = _random_pcm(rng)
        encoder = SystematicEncoder(pcm)
        if encoder.dimension == 0:
            return
        a = rng.integers(0, 2, size=encoder.dimension, dtype=np.uint8)
        b = rng.integers(0, 2, size=encoder.dimension, dtype=np.uint8)
        assert np.array_equal(encoder.encode(a ^ b), encoder.encode(a) ^ encoder.encode(b))


class TestFramingProperties:
    @SETTINGS
    @given(st.integers(0, 2**32 - 1), st.integers(1, 8), st.integers(0, 5))
    def test_shortening_roundtrip(self, seed, shorten_by, pad):
        rng = np.random.default_rng(seed)
        pcm = _random_pcm(rng)
        if pcm.dimension <= shorten_by:
            return
        shortened = ShortenedCode(
            pcm,
            info_bits=pcm.dimension - shorten_by,
            frame_length=pcm.block_length - shorten_by + pad,
        )
        payload = rng.integers(0, 2, size=shortened.transmitted_code_bits, dtype=np.uint8)
        base = shortened.expand_to_base(payload)
        assert np.array_equal(shortened.extract_transmitted(base), payload)
        frame = shortened.build_frame(payload)
        assert frame.size == shortened.frame_length
        assert np.array_equal(shortened.strip_frame(frame), payload)
        # LLR mapping marks exactly the shortened positions as known.
        llrs = shortened.base_llrs_from_frame_llrs(rng.normal(size=shortened.frame_length))
        assert np.count_nonzero(llrs == 1e3) == shortened.num_shortened

    @SETTINGS
    @given(st.integers(0, 2**32 - 1), st.integers(1, 6))
    def test_puncturing_partition(self, seed, punctured_count):
        rng = np.random.default_rng(seed)
        pcm = _random_pcm(rng)
        punctured_count = min(punctured_count, pcm.block_length - 1)
        positions = rng.choice(pcm.block_length, size=punctured_count, replace=False)
        punctured = PuncturedCode(pcm, positions)
        # Transmitted and punctured positions partition the codeword.
        merged = np.sort(
            np.concatenate([punctured.transmitted_positions(), punctured.punctured_positions()])
        )
        assert np.array_equal(merged, np.arange(pcm.block_length))
        # Erasure insertion puts zeros exactly at the punctured positions.
        llrs = punctured.base_llrs_from_transmitted_llrs(
            np.full(punctured.transmitted_length, 2.5)
        )
        assert np.count_nonzero(llrs == 0.0) == punctured.num_punctured


class TestThroughputProperties:
    @SETTINGS
    @given(st.integers(1, 200), st.integers(1, 200))
    def test_more_iterations_never_faster(self, iterations_a, iterations_b):
        model = ThroughputModel(low_cost_architecture())
        fast = model.point(min(iterations_a, iterations_b)).throughput_bps
        slow = model.point(max(iterations_a, iterations_b)).throughput_bps
        assert slow <= fast

    @SETTINGS
    @given(st.floats(0.5, 50.0))
    def test_effective_point_interpolates(self, average_iterations):
        model = ThroughputModel(low_cost_architecture())
        effective = model.effective_point(average_iterations)
        assert effective.throughput_bps > 0
        # Early termination can only help relative to the fixed-iteration mode
        # with at least that many iterations.
        fixed = model.point(int(np.ceil(average_iterations)))
        assert effective.throughput_bps >= fixed.throughput_bps - 1e-6

    def test_effective_point_validation(self):
        model = ThroughputModel(low_cost_architecture())
        with pytest.raises(ValueError):
            model.effective_point(0.0)

    def test_effective_point_matches_fixed_on_integers(self):
        model = ThroughputModel(low_cost_architecture())
        assert model.effective_point(18).throughput_bps == pytest.approx(
            model.point(18).throughput_bps
        )
