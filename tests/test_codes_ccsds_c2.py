"""Unit tests for repro.codes.ccsds_c2 (structure of the CCSDS C2 code)."""

import os

import pytest

from repro.codes.ccsds_c2 import (
    CCSDS_C2_BLOCK_LENGTH,
    CCSDS_C2_CIRCULANT_SIZE,
    CCSDS_C2_COLUMN_BLOCKS,
    CCSDS_C2_NUM_CHECKS,
    CCSDS_C2_ROW_BLOCKS,
    CCSDS_C2_TX_FRAME_LENGTH,
    CCSDS_C2_TX_INFO_BITS,
    build_ccsds_c2_code,
    build_ccsds_c2_spec,
    build_ccsds_c2_transmission_code,
    build_scaled_ccsds_code,
)
from repro.codes.construction import spec_has_four_cycle

FULL_SCALE = os.environ.get("REPRO_FULL_SCALE") == "1"


class TestConstants:
    def test_paper_section_2_2_values(self):
        """Section 2.2: 2 x 16 array of 511 x 511 circulants -> 1022 x 8176 H."""
        assert CCSDS_C2_CIRCULANT_SIZE == 511
        assert CCSDS_C2_ROW_BLOCKS == 2
        assert CCSDS_C2_COLUMN_BLOCKS == 16
        assert CCSDS_C2_BLOCK_LENGTH == 8176
        assert CCSDS_C2_NUM_CHECKS == 1022
        assert CCSDS_C2_TX_FRAME_LENGTH == 8160
        assert CCSDS_C2_TX_INFO_BITS == 7136


class TestFullSizeSpec:
    def test_spec_structure(self):
        spec = build_ccsds_c2_spec()
        assert spec.circulant_size == 511
        assert spec.row_blocks == 2
        assert spec.col_blocks == 16
        # Row weight 2 per circulant -> total row weight 32, column weight 4.
        assert spec.row_weight() == 32
        assert spec.column_weight() == 4
        assert spec.total_edges() == 32 * 1022

    def test_spec_is_girth_6(self):
        assert not spec_has_four_cycle(build_ccsds_c2_spec())

    def test_spec_deterministic(self):
        assert build_ccsds_c2_spec() == build_ccsds_c2_spec()

    def test_full_code_shape_without_expansion(self):
        code = build_ccsds_c2_code()
        assert code.block_length == 8176
        assert code.num_checks == 1022
        assert code.num_edges == 32704


class TestScaledTwins:
    def test_scaled_structure_matches(self, scaled_code):
        assert scaled_code.spec.row_blocks == 2
        assert scaled_code.spec.col_blocks == 16
        assert scaled_code.spec.row_weight() == 32
        assert scaled_code.spec.column_weight() == 4

    def test_scaled_rate_close_to_full(self, scaled_code):
        # 7154/8176 = 0.875; scaled twins stay within a couple of percent.
        assert abs(scaled_code.rate - 0.875) < 0.02

    def test_different_sizes_give_different_lengths(self):
        assert build_scaled_ccsds_code(31).block_length == 31 * 16
        assert build_scaled_ccsds_code(63).block_length == 63 * 16


class TestTransmissionCode:
    def test_scaled_transmission_code(self):
        shortened = build_ccsds_c2_transmission_code(circulant_size=31)
        assert shortened.frame_length == round(8160 * 31 / 511)
        assert shortened.info_bits <= shortened.base_code.dimension
        assert shortened.num_shortened == shortened.base_code.dimension - shortened.info_bits
        assert 0.85 < shortened.rate < 0.9

    @pytest.mark.slow
    @pytest.mark.skipif(not FULL_SCALE, reason="full 8176-bit code (set REPRO_FULL_SCALE=1)")
    def test_full_transmission_code(self):
        shortened = build_ccsds_c2_transmission_code()
        assert shortened.frame_length == 8160
        assert shortened.info_bits == 7136
        assert shortened.rate == pytest.approx(7136 / 8160)
