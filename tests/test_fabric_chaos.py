"""The fabric chaos battery: bit-identity under scripted failure schedules.

The fabric's contract is a single sentence — *for any fleet, any broker and
any failure schedule the lease policy survives, the stored curves are
byte-identical to the serial engine's*.  Each test here replays one
deterministic :class:`~repro.fabric.faults.FaultPlan` (worker deaths,
dropped heartbeats, duplicate deliveries, stragglers) against both broker
backends on the logical clock and compares the resulting ``*.curve.json``
files byte-for-byte against a serial reference computed once per module.
A separate group proves the crash story: a run stranded by total fleet
death raises :class:`~repro.fabric.FabricStalledError`, keeps every
completed point, and a resumed run converges to the same bytes.
"""

import json

import pytest

from repro.fabric import (
    FabricConfig,
    FabricJobError,
    FabricStalledError,
    FaultPlan,
    LeasePolicy,
)
from repro.sim import SimulationConfig
from repro.sim.campaign import (
    CampaignScheduler,
    CampaignSpec,
    CodeSpec,
    DecoderSpec,
    ExperimentSpec,
    ResultStore,
)

CHAOS_CONFIG = SimulationConfig(
    max_frames=60, target_frame_errors=8, batch_frames=10, all_zero_codeword=True
)

# Tight enough that kills recover in a handful of logical ticks; generous
# enough in attempts that no scripted schedule exhausts the retry budget.
POLICY = LeasePolicy(
    ttl=5.0,
    max_attempts=6,
    backoff_base=1.0,
    backoff_factor=2.0,
    straggler_after=6.0,
)

WORKERS = 3

# One named schedule per recovery path (plus their combination).  Every
# plan keeps at least one worker alive, so each campaign must complete.
SCHEDULES = {
    "fault-free": FaultPlan(),
    "worker-killed": FaultPlan(kill_after={"w1": 1}),
    "instant-death": FaultPlan(kill_after={"w1": 0, "w2": 0}),
    "duplicate-delivery": FaultPlan(duplicate_leases=frozenset({0, 2, 5})),
    "stale-lease": FaultPlan(
        drop_heartbeat_after={"w1": 0}, shard_ticks={"w1": 8}
    ),
    "straggler": FaultPlan(shard_ticks={"w1": 12}),
    "kitchen-sink": FaultPlan(
        kill_after={"w2": 2},
        drop_heartbeat_after={"w1": 1},
        shard_ticks={"w1": 7},
        duplicate_leases=frozenset({1, 3}),
    ),
}


def chaos_spec(name="chaos-campaign"):
    code = CodeSpec(family="scaled", circulant=31)
    return CampaignSpec(
        name=name,
        seed=11,
        ebn0=(2.0, 3.0),
        config=CHAOS_CONFIG,
        experiments=[
            ExperimentSpec(label="nms", code=code, decoder=DecoderSpec("nms", 8)),
            ExperimentSpec(
                label="min-sum", code=code, decoder=DecoderSpec("min-sum", 8)
            ),
        ],
    )


def curve_bytes(directory):
    """Label -> raw bytes of every stored curve file (the identity unit)."""
    files = sorted(directory.glob("*.curve.json"))
    assert files, f"no curves stored under {directory}"
    return {path.name: path.read_bytes() for path in files}


def fabric_config(tmp_path, backend, plan, **overrides):
    kwargs = dict(
        broker_dir=str(tmp_path / "broker") if backend == "filesystem" else None,
        local_workers=WORKERS,
        policy=POLICY,
        fault_plan=plan,
        wall_clock=False,  # logical clock even for the filesystem backend
    )
    kwargs.update(overrides)
    return FabricConfig(**kwargs)


def run_fabric(tmp_path, backend, plan, **overrides):
    store = ResultStore.create(tmp_path / "store", chaos_spec())
    scheduler = CampaignScheduler(
        store.spec,
        store,
        telemetry=False,
        fabric=fabric_config(tmp_path, backend, plan, **overrides),
    )
    scheduler.run()
    return store


@pytest.fixture(scope="module")
def serial_curves(tmp_path_factory):
    """The ground truth: the same campaign on the serial engine."""
    directory = tmp_path_factory.mktemp("serial")
    store = ResultStore.create(directory / "store", chaos_spec())
    CampaignScheduler(store.spec, store, telemetry=False).run()
    return curve_bytes(store.directory)


@pytest.mark.parametrize("backend", ["inprocess", "filesystem"])
@pytest.mark.parametrize("schedule", sorted(SCHEDULES))
def test_curves_byte_identical_under_schedule(
    tmp_path, backend, schedule, serial_curves
):
    store = run_fabric(tmp_path, backend, SCHEDULES[schedule])
    assert curve_bytes(store.directory) == serial_curves


@pytest.mark.parametrize("backend", ["inprocess", "filesystem"])
def test_fabric_rerun_is_itself_deterministic(tmp_path, backend):
    """Same schedule twice -> same bytes (the battery's own replay axiom)."""
    plan = SCHEDULES["kitchen-sink"]
    first = run_fabric(tmp_path / "a", backend, plan)
    second = run_fabric(tmp_path / "b", backend, plan)
    assert curve_bytes(first.directory) == curve_bytes(second.directory)


class TestCrashAndResume:
    """Total fleet death mid-campaign, then a clean resume."""

    # Every worker dies after a single completed shard: three folded shards
    # can never finish four points, so the stall is guaranteed.
    DEADLY = FaultPlan(kill_after={"w0": 1, "w1": 1, "w2": 1})

    @pytest.mark.parametrize("backend", ["inprocess", "filesystem"])
    def test_stall_keeps_store_and_resume_converges(
        self, tmp_path, backend, serial_curves
    ):
        store = ResultStore.create(tmp_path / "store", chaos_spec())
        scheduler = CampaignScheduler(
            store.spec,
            store,
            telemetry=False,
            fabric=fabric_config(tmp_path, backend, self.DEADLY),
        )
        with pytest.raises(FabricStalledError):
            scheduler.run()

        # Whatever completed before the stall is already durable and valid.
        reopened = ResultStore.open(store.directory)
        completed = {
            label: reopened.completed_ebn0(label) for label in ("nms", "min-sum")
        }
        assert sum(len(points) for points in completed.values()) < 4

        # Resume with a healthy fleet (same store, same broker directory for
        # the filesystem backend — its stale leases re-queue on create).
        resumed = CampaignScheduler(
            store.spec,
            reopened,
            telemetry=False,
            fabric=fabric_config(tmp_path, backend, FaultPlan()),
        )
        resumed.run()
        assert curve_bytes(store.directory) == serial_curves

    def test_sigkill_equivalent_no_stall_detection_on_wall_clock(self, tmp_path):
        """Wall-clock coordinators never declare a stall (workers may join)."""
        from repro.fabric import FabricPool

        with pytest.raises(ValueError):
            FabricPool({}, workers=0)  # empty entries rejected first
        # workers=0 demands wall_clock: the logical clock has no one to serve.
        store = ResultStore.create(tmp_path / "store", chaos_spec())
        scheduler = CampaignScheduler(
            store.spec,
            store,
            telemetry=False,
            fabric=FabricConfig(local_workers=0, wall_clock=False),
        )
        with pytest.raises(ValueError, match="wall_clock"):
            scheduler.run()


class TestRetryBudget:
    def test_dead_letter_surfaces_as_fabric_job_error(self, tmp_path):
        """With a one-attempt budget, a single kill is fatal — loudly so."""
        store = ResultStore.create(tmp_path / "store", chaos_spec())
        scheduler = CampaignScheduler(
            store.spec,
            store,
            telemetry=False,
            fabric=FabricConfig(
                local_workers=2,
                policy=LeasePolicy(ttl=5.0, max_attempts=1, straggler_after=None),
                fault_plan=FaultPlan(kill_after={"w1": 0}),
                wall_clock=False,
            ),
        )
        with pytest.raises(FabricJobError, match="dead-letter"):
            scheduler.run()


class TestFilesystemBrokerReuse:
    def test_resume_skips_completed_points_without_recompute(self, tmp_path):
        """A finished campaign resumed over the same broker dir is a no-op."""
        plan_dir = tmp_path / "broker"
        store = run_fabric(tmp_path, "filesystem", FaultPlan())
        before = curve_bytes(store.directory)
        reopened = ResultStore.open(store.directory)
        scheduler = CampaignScheduler(
            store.spec,
            reopened,
            telemetry=False,
            fabric=FabricConfig(
                broker_dir=str(plan_dir),
                local_workers=WORKERS,
                policy=POLICY,
                wall_clock=False,
            ),
        )
        scheduler.run()
        assert curve_bytes(store.directory) == before

    def test_done_marker_written_on_clean_finish(self, tmp_path):
        from repro.fabric import FilesystemBroker

        run_fabric(tmp_path, "filesystem", FaultPlan())
        broker = FilesystemBroker.open(tmp_path / "broker")
        assert broker.is_done()

    def test_completion_records_name_the_workers(self, tmp_path):
        """Completion records are auditable: each names its winning worker."""
        run_fabric(tmp_path, "filesystem", FaultPlan())
        results = sorted((tmp_path / "broker" / "results").glob("*.json"))
        assert results
        workers = {
            json.loads(path.read_text())["worker"] for path in results
        }
        assert workers <= {f"w{i}" for i in range(WORKERS)}
