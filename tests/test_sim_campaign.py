"""Tests for the declarative campaign layer (repro.sim.campaign)."""

import json

import pytest

from repro.cli import main
from repro.registry import component_names
from repro.sim import EbN0Sweep, SimulationConfig
from repro.sim.campaign import (
    CampaignScheduler,
    CampaignSpec,
    ChannelSpec,
    CodeSpec,
    DecoderSpec,
    ExperimentSpec,
    ResultStore,
    StoreMismatchError,
    config_from_dict,
    expand_grid,
)
from repro.sim.campaign.spec import BoundDecoderFactory, slugify
from repro.sim.results import SimulationCurve, SimulationPoint


TINY_CONFIG = SimulationConfig(
    max_frames=40, target_frame_errors=6, batch_frames=10, all_zero_codeword=True
)


def tiny_spec(name="test-campaign", seed=7, ebn0=(2.0, 4.0)) -> CampaignSpec:
    """Two decoder configurations on the scaled code — fast but non-trivial."""
    code = CodeSpec(family="scaled", circulant=31)
    return CampaignSpec(
        name=name,
        seed=seed,
        ebn0=tuple(ebn0),
        config=TINY_CONFIG,
        experiments=[
            ExperimentSpec(label="nms", code=code, decoder=DecoderSpec("nms", 8)),
            ExperimentSpec(
                label="min-sum", code=code, decoder=DecoderSpec("min-sum", 8)
            ),
        ],
    )


class TestSpecs:
    def test_campaign_round_trips_through_json(self):
        spec = tiny_spec()
        restored = CampaignSpec.from_dict(json.loads(json.dumps(spec.as_dict())))
        assert restored.as_dict() == spec.as_dict()

    def test_save_and_load(self, tmp_path):
        spec = tiny_spec()
        path = tmp_path / "spec.json"
        spec.save(path)
        assert CampaignSpec.load(path).as_dict() == spec.as_dict()

    def test_experiment_overrides_survive_round_trip(self):
        override = SimulationConfig(max_frames=99, target_frame_errors=9)
        experiment = ExperimentSpec(
            label="override",
            code=CodeSpec(family="scaled", circulant=31),
            decoder=DecoderSpec("nms", 8, params={"alpha": 1.5}),
            ebn0=(1.0, 2.0, 3.0),
            config=override,
        )
        spec = CampaignSpec(name="o", experiments=[experiment], ebn0=(5.0,))
        restored = CampaignSpec.from_dict(spec.as_dict()).experiments[0]
        assert restored.ebn0 == (1.0, 2.0, 3.0)
        assert restored.config.max_frames == 99
        assert restored.decoder.params == {"alpha": 1.5}
        assert restored.resolve_ebn0(spec.ebn0) == (1.0, 2.0, 3.0)

    def test_decoder_factory_is_picklable(self, scaled_code):
        """Campaign pool entries must survive spawn-start-method pickling."""
        import pickle

        factory = DecoderSpec("nms", 8, params={"alpha": 1.25}).factory(scaled_code)
        assert isinstance(factory, BoundDecoderFactory)
        rebuilt = pickle.loads(pickle.dumps(factory))
        decoder = rebuilt()
        assert decoder.alpha == 1.25
        assert decoder.max_iterations == 8

    def test_decoder_spec_builds_with_fixed_point_format(self, scaled_code):
        decoder = DecoderSpec(
            "quantized", 8, params={"alpha": 1.25, "message_format": [6, 2]}
        ).build(scaled_code)
        assert decoder.message_format.total_bits == 6
        assert decoder.message_format.fractional_bits == 2

    def test_validation_errors(self):
        code = CodeSpec(family="scaled", circulant=31)
        with pytest.raises(ValueError, match="family"):
            CodeSpec(family="mystery")
        with pytest.raises(ValueError, match="circulant"):
            CodeSpec(family="scaled")
        with pytest.raises(ValueError, match="kind"):
            DecoderSpec(kind="turbo")
        with pytest.raises(ValueError, match="duplicate"):
            CampaignSpec(
                name="dup",
                ebn0=(1.0,),
                experiments=[
                    ExperimentSpec("a", code, DecoderSpec("nms")),
                    ExperimentSpec("a", code, DecoderSpec("min-sum")),
                ],
            )
        with pytest.raises(ValueError, match="Eb/N0"):
            CampaignSpec(
                name="nogrid",
                experiments=[ExperimentSpec("a", code, DecoderSpec("nms"))],
            )
        with pytest.raises(ValueError, match="at least one"):
            CampaignSpec(name="empty", ebn0=(1.0,), experiments=[])

    def test_duplicate_ebn0_values_rejected(self):
        """Two jobs at one Eb/N0 would race for one store slot."""
        code = CodeSpec(family="scaled", circulant=31)
        with pytest.raises(ValueError, match="duplicate Eb/N0"):
            CampaignSpec(
                name="dup-grid",
                ebn0=(3.0, 3.0),
                experiments=[ExperimentSpec("a", code, DecoderSpec("nms"))],
            )
        with pytest.raises(ValueError, match="duplicate Eb/N0"):
            CampaignSpec(
                name="dup-own",
                ebn0=(1.0,),
                experiments=[
                    ExperimentSpec("a", code, DecoderSpec("nms"), ebn0=(2.0, 2.0))
                ],
            )

    def test_ccsds_key_reflects_circulant_override(self):
        assert CodeSpec(family="ccsds-c2").key == "ccsds-c2"
        scaled_twin = CodeSpec(family="ccsds-c2", circulant=31)
        assert scaled_twin.key == "ccsds-c2-c31"
        assert scaled_twin.key != CodeSpec(family="ccsds-c2").key

    def test_slugify(self):
        assert slugify("nms/alpha=1.25") == "nms-alpha-1.25"
        assert slugify("///") == "experiment"


class TestGridExpansion:
    def test_cartesian_axes_over_params_and_iterations(self):
        experiments = expand_grid(
            {
                "codes": [{"family": "scaled", "circulant": 31}],
                "decoders": [
                    {
                        "kind": "nms",
                        "iterations": [10, 18],
                        "params": {"alpha": [1.25, 1.5]},
                    },
                    {"kind": "min-sum", "iterations": 50},
                ],
            }
        )
        labels = [e.label for e in experiments]
        assert len(experiments) == 5  # 2 x 2 + 1
        assert len(set(labels)) == 5
        assert "nms-it10-alpha1.25" in labels
        assert "nms-it18-alpha1.5" in labels
        assert "min-sum-it50" in labels

    def test_codes_and_configs_are_axes_too(self):
        experiments = expand_grid(
            {
                "codes": [
                    {"family": "scaled", "circulant": 31},
                    {"family": "scaled", "circulant": 63},
                ],
                "decoders": [{"kind": "nms", "iterations": 8}],
                "configs": [
                    {"max_frames": 10, "target_frame_errors": 2},
                    {"max_frames": 20, "target_frame_errors": 2},
                ],
            }
        )
        assert len(experiments) == 4
        labels = {e.label for e in experiments}
        assert "scaled31-nms-it8-cfg0" in labels
        assert {e.config.max_frames for e in experiments} == {10, 20}

    def test_format_pair_is_value_but_pair_list_is_axis(self):
        single = expand_grid(
            {"decoders": [{"kind": "quantized", "params": {"message_format": [6, 2]}}]}
        )
        assert len(single) == 1
        assert single[0].decoder.params["message_format"] == [6, 2]
        axis = expand_grid(
            {
                "decoders": [
                    {
                        "kind": "quantized",
                        "params": {"message_format": [[4, 1], [6, 2]]},
                    }
                ]
            }
        )
        assert len(axis) == 2
        assert [e.decoder.params["message_format"] for e in axis] == [[4, 1], [6, 2]]

    def test_grid_inside_campaign_dict(self):
        spec = CampaignSpec.from_dict(
            {
                "name": "g",
                "ebn0": [3.0],
                "grid": {
                    "codes": [{"family": "scaled", "circulant": 31}],
                    "decoders": [{"kind": "nms", "iterations": [8, 18]}],
                },
            }
        )
        assert [e.label for e in spec.experiments] == ["nms-it8", "nms-it18"]
        assert spec.total_points() == 2

    def test_unknown_grid_keys_rejected(self):
        with pytest.raises(ValueError, match="grid keys"):
            expand_grid({"decoder": [{"kind": "nms"}]})


class TestResultStore:
    def test_create_open_round_trip(self, tmp_path):
        spec = tiny_spec()
        store = ResultStore.create(tmp_path / "c", spec)
        reopened = ResultStore.open(tmp_path / "c")
        assert reopened.spec.as_dict() == spec.as_dict()

    def test_mismatched_spec_rejected_unless_fresh(self, tmp_path):
        ResultStore.create(tmp_path / "c", tiny_spec(seed=7))
        with pytest.raises(StoreMismatchError):
            ResultStore.create(tmp_path / "c", tiny_spec(seed=8))
        store = ResultStore.create(tmp_path / "c", tiny_spec(seed=8), fresh=True)
        assert store.spec.seed == 8

    def test_record_point_persists_incrementally(self, tmp_path, scaled_code):
        spec = tiny_spec()
        store = ResultStore.create(tmp_path / "c", spec)
        point = (
            EbN0Sweep(
                scaled_code,
                lambda: DecoderSpec("nms", 8).build(scaled_code),
                config=TINY_CONFIG,
                rng=1,
            )
            .run([2.0], label="nms")
            .points[0]
        )
        store.record_point("nms", point)
        # Visible to a completely fresh store object (i.e. on disk, valid JSON).
        fresh = ResultStore.open(tmp_path / "c")
        assert fresh.completed_ebn0("nms") == {2.0}
        # Recording the same Eb/N0 again is a no-op, not a duplicate.
        store.record_point("nms", point)
        assert len(store.curve("nms").points) == 1

    def test_curve_metadata_addresses_the_experiment(self, tmp_path):
        spec = tiny_spec()
        store = ResultStore.create(tmp_path / "c", spec)
        metadata = store.curve("min-sum").metadata
        assert metadata["campaign"] == spec.name
        assert metadata["experiment"] == "min-sum"
        assert metadata["experiment_index"] == 1
        assert metadata["seed"] == spec.seed
        assert metadata["decoder"]["kind"] == "min-sum"
        assert metadata["config"]["max_frames"] == TINY_CONFIG.max_frames
        assert metadata["ebn0_grid"] == [2.0, 4.0]

    def test_unknown_label_rejected(self, tmp_path):
        store = ResultStore.create(tmp_path / "c", tiny_spec())
        with pytest.raises(KeyError):
            store.curve("nope")

    def test_fresh_discards_stray_curves_even_without_manifest(self, tmp_path):
        directory = tmp_path / "c"
        directory.mkdir()
        stray = directory / "nms.curve.json"
        stray.write_text(json.dumps({"label": "nms", "points": []}))
        ResultStore.create(directory, tiny_spec(), fresh=True)
        assert not stray.exists()

    def test_status_reports_corrupt_curve_instead_of_raising(self, tmp_path):
        """Regression: a mismatched curve file used to crash campaign status."""
        spec = tiny_spec()
        store = ResultStore.create(tmp_path / "c", spec)
        path = store.curve_path("nms")
        path.write_text(
            json.dumps(
                {
                    "label": "nms",
                    "metadata": {"campaign": "someone-else", "seed": 123},
                    "points": [],
                }
            )
        )
        rows = ResultStore.open(tmp_path / "c").status()
        corrupt = {row["label"]: row for row in rows}["nms"]
        assert corrupt["error"] is not None
        assert "different campaign spec" in corrupt["error"]
        assert corrupt["complete"] is False
        assert corrupt["points_done"] == 0
        # The healthy experiment is still reported normally.
        assert {row["label"]: row for row in rows}["min-sum"]["error"] is None

    def test_status_reports_unreadable_curve_file(self, tmp_path):
        spec = tiny_spec()
        store = ResultStore.create(tmp_path / "c", spec)
        store.curve_path("min-sum").write_text("{broken json")
        fresh = ResultStore.open(tmp_path / "c")
        corrupt = {row["label"]: row for row in fresh.status()}["min-sum"]
        assert "not a readable curve file" in corrupt["error"]
        assert not fresh.is_complete()

    def test_stray_curve_from_other_spec_rejected(self, tmp_path):
        """A curve measured under a different spec must not be adopted."""
        other = tiny_spec(seed=99)
        directory = tmp_path / "c"
        other_store = ResultStore.create(directory, other)
        other_store.curve("nms")  # stamp metadata
        other_store.record_point(
            "nms",
            SimulationPoint(
                ebn0_db=2.0, ber=0.1, fer=0.5, bit_errors=1, frame_errors=1,
                bits=10, frames=2,
            ),
        )
        (directory / "campaign.json").unlink()  # simulate manual recovery
        store = ResultStore.create(directory, tiny_spec(seed=7))
        with pytest.raises(StoreMismatchError, match="different campaign spec"):
            store.curve("nms")


class TestScheduler:
    def test_plan_interleaves_experiments_round_robin(self, tmp_path):
        spec = tiny_spec()
        store = ResultStore.create(tmp_path / "c", spec)
        jobs = CampaignScheduler(spec, store).plan()
        assert [(j.label, j.point_index) for j in jobs] == [
            ("nms", 0),
            ("min-sum", 0),
            ("nms", 1),
            ("min-sum", 1),
        ]

    def test_seed_derivation_is_pure(self, tmp_path):
        spec = tiny_spec()
        store = ResultStore.create(tmp_path / "c", spec)
        scheduler = CampaignScheduler(spec, store)
        first = [j.seed.entropy for j in scheduler.plan()]
        second = [j.seed.entropy for j in scheduler.plan()]
        assert first == second

    def test_serial_campaign_matches_standalone_sweeps(self, tmp_path, scaled_code):
        """A campaign experiment == an EbN0Sweep seeded with its child stream."""
        import numpy as np

        spec = tiny_spec()
        store = ResultStore.create(tmp_path / "c", spec)
        curves = CampaignScheduler(spec, store, workers=None).run()
        children = np.random.SeedSequence(spec.seed).spawn(2)
        for index, (label, kind) in enumerate([("nms", "nms"), ("min-sum", "min-sum")]):
            sweep = EbN0Sweep(
                scaled_code,
                lambda k=kind: DecoderSpec(k, 8).build(scaled_code),
                config=TINY_CONFIG,
                rng=children[index],
            )
            assert curves[label].points == sweep.run(spec.ebn0).points

    def test_pooled_campaign_matches_serial_for_any_worker_count(self, tmp_path):
        spec = tiny_spec()
        reference = CampaignScheduler(
            spec, ResultStore.create(tmp_path / "serial", spec), workers=None
        ).run()
        for workers in (1, 3):
            curves = CampaignScheduler(
                spec,
                ResultStore.create(tmp_path / f"w{workers}", spec),
                workers=workers,
            ).run()
            for label, curve in reference.items():
                assert curves[label].points == curve.points

    def test_pooled_campaign_works_under_spawn_start_method(self, tmp_path):
        """Campaign entries are picklable: the pool starts without fork."""
        import multiprocessing

        if "spawn" not in multiprocessing.get_all_start_methods():  # pragma: no cover
            pytest.skip("spawn start method unavailable")
        spec = tiny_spec(ebn0=(2.0,))
        reference = CampaignScheduler(
            spec, ResultStore.create(tmp_path / "serial", spec), workers=None
        ).run()
        curves = CampaignScheduler(
            spec,
            ResultStore.create(tmp_path / "spawned", spec),
            workers=2,
            mp_context="spawn",
        ).run()
        for label, curve in reference.items():
            assert curves[label].points == curve.points

    def test_resume_after_partial_store_is_bit_identical(self, tmp_path):
        spec = tiny_spec()
        reference = CampaignScheduler(
            spec, ResultStore.create(tmp_path / "ref", spec), workers=None
        ).run()
        # Pre-populate a fresh store with an arbitrary subset of points, as a
        # killed campaign would leave behind.
        partial = ResultStore.create(tmp_path / "partial", spec)
        partial.record_point("nms", reference["nms"].points[1])
        partial.record_point("min-sum", reference["min-sum"].points[0])
        scheduler = CampaignScheduler(spec, partial, workers=2)
        assert len(scheduler.pending()) == 2
        resumed = scheduler.run()
        for label, curve in reference.items():
            assert resumed[label].points == curve.points

    def test_interrupted_serial_run_resumes_to_identical_counts(self, tmp_path):
        spec = tiny_spec()
        reference = CampaignScheduler(
            spec, ResultStore.create(tmp_path / "ref", spec), workers=None
        ).run()

        class Stop(Exception):
            pass

        def explode_after_first(label, point):
            raise Stop

        store = ResultStore.create(tmp_path / "int", spec)
        with pytest.raises(Stop):
            CampaignScheduler(spec, store, workers=None).run(
                progress=explode_after_first
            )
        # The first point survived the crash on disk...
        survivor = ResultStore.open(tmp_path / "int")
        assert sum(r["points_done"] for r in survivor.status()) == 1
        # ...and resuming completes to the uninterrupted counts.
        resumed = CampaignScheduler(spec, survivor, workers=None).run()
        for label, curve in reference.items():
            assert resumed[label].points == curve.points

    def test_progress_callback_sees_every_point(self, tmp_path):
        spec = tiny_spec()
        store = ResultStore.create(tmp_path / "c", spec)
        seen = []
        CampaignScheduler(spec, store, workers=2).run(
            progress=lambda label, point: seen.append((label, point.ebn0_db))
        )
        assert sorted(seen) == [
            ("min-sum", 2.0),
            ("min-sum", 4.0),
            ("nms", 2.0),
            ("nms", 4.0),
        ]

    def test_completed_campaign_runs_nothing(self, tmp_path):
        spec = tiny_spec()
        store = ResultStore.create(tmp_path / "c", spec)
        CampaignScheduler(spec, store, workers=None).run()
        scheduler = CampaignScheduler(spec, store, workers=None)
        assert scheduler.pending() == []
        assert store.is_complete()


class TestCampaignCLI:
    @pytest.fixture()
    def spec_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(
            json.dumps(
                {
                    "name": "cli",
                    "seed": 3,
                    "ebn0": [2.0, 4.0],
                    "config": {
                        "max_frames": 30,
                        "target_frame_errors": 6,
                        "batch_frames": 10,
                        "all_zero_codeword": True,
                    },
                    "grid": {
                        "codes": [{"family": "scaled", "circulant": 31}],
                        "decoders": [
                            {"kind": "nms", "iterations": 8},
                            {"kind": "min-sum", "iterations": 8},
                        ],
                    },
                }
            )
        )
        return path

    def test_run_status_resume(self, tmp_path, spec_file, capsys):
        out_dir = tmp_path / "out"
        assert main(["campaign", "run", str(spec_file), "--dir", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "4 to run" in out
        assert "results stored in" in out
        assert (out_dir / "campaign.json").exists()
        assert (out_dir / "nms-it8.curve.json").exists()
        curve = SimulationCurve.load(out_dir / "nms-it8.curve.json")
        assert curve.metadata["experiment"] == "nms-it8"
        assert len(curve.points) == 2

        assert main(["campaign", "status", str(out_dir)]) == 0
        assert "done" in capsys.readouterr().out

        # Everything done: resume has nothing to run but succeeds.
        assert main(["campaign", "resume", str(out_dir)]) == 0
        assert "0 to run" in capsys.readouterr().out

    def test_status_of_partial_store_exits_nonzero(self, tmp_path, spec_file, capsys):
        out_dir = tmp_path / "out"
        spec = CampaignSpec.load(spec_file)
        ResultStore.create(out_dir, spec)
        assert main(["campaign", "status", str(out_dir)]) == 1
        assert "partial" in capsys.readouterr().out

    def test_status_names_the_corrupt_experiment(self, tmp_path, spec_file, capsys):
        """Regression: status used to raise StoreMismatchError on bad files."""
        out_dir = tmp_path / "out"
        store = ResultStore.create(out_dir, CampaignSpec.load(spec_file))
        path = store.curve_path("nms-it8")
        path.write_text(
            json.dumps(
                {
                    "label": "nms-it8",
                    "metadata": {"campaign": "other", "seed": 9},
                    "points": [],
                }
            )
        )
        assert main(["campaign", "status", str(out_dir)]) == 1
        out = capsys.readouterr().out
        assert "corrupt" in out
        assert "nms-it8" in out
        assert "different campaign spec" in out

    def test_run_with_workers_matches_serial(self, tmp_path, spec_file, capsys):
        serial_dir = tmp_path / "serial"
        pooled_dir = tmp_path / "pooled"
        assert main(["campaign", "run", str(spec_file), "--dir", str(serial_dir)]) == 0
        assert main([
            "campaign", "run", str(spec_file), "--dir", str(pooled_dir),
            "--workers", "2",
        ]) == 0
        capsys.readouterr()
        for path in serial_dir.glob("*.curve.json"):
            serial = json.loads(path.read_text())
            pooled = json.loads((pooled_dir / path.name).read_text())
            assert serial["points"] == pooled["points"]

    def test_mismatched_rerun_needs_fresh(self, tmp_path, spec_file, capsys):
        out_dir = tmp_path / "out"
        assert main(["campaign", "run", str(spec_file), "--dir", str(out_dir)]) == 0
        changed = json.loads(spec_file.read_text())
        changed["seed"] = 99
        spec_file.write_text(json.dumps(changed))
        capsys.readouterr()
        # Usage errors exit 2 (distinct from status's 1 = incomplete).
        assert main(["campaign", "run", str(spec_file), "--dir", str(out_dir)]) == 2
        assert "different spec" in capsys.readouterr().err
        assert main([
            "campaign", "run", str(spec_file), "--dir", str(out_dir), "--fresh",
        ]) == 0

    def test_bad_directory_and_bad_spec_exit_2(self, tmp_path, capsys):
        assert main(["campaign", "status", str(tmp_path / "nope")]) == 2
        assert "cannot open" in capsys.readouterr().err
        assert main(["campaign", "resume", str(tmp_path / "nope")]) == 2
        capsys.readouterr()
        bad_spec = tmp_path / "bad.json"
        bad_spec.write_text("{not json")
        assert main(["campaign", "run", str(bad_spec)]) == 2
        assert "cannot load campaign spec" in capsys.readouterr().err


class TestChannelSpec:
    def test_default_is_awgn_and_omitted_from_dicts(self):
        spec = ChannelSpec()
        assert spec.kind == "awgn"
        assert spec.is_default
        assert spec.as_dict() == {"kind": "awgn"}
        experiment = ExperimentSpec(
            "a", CodeSpec(family="scaled", circulant=31), DecoderSpec("nms")
        )
        # The default channel does not appear in the JSON form, so specs
        # written before the channel axis existed stay byte-comparable.
        assert "channel" not in experiment.as_dict()

    def test_round_trip_with_params_and_modulator(self):
        spec = ChannelSpec(
            kind="rayleigh",
            params={"block_length": 16},
            modulator="bpsk",
            modulator_params={"amplitude": 2.0},
        )
        restored = ChannelSpec.from_dict(json.loads(json.dumps(spec.as_dict())))
        assert restored == spec
        assert restored.as_dict() == {
            "kind": "rayleigh",
            "params": {"block_length": 16},
            "modulator_params": {"amplitude": 2.0},
        }

    def test_keys_include_non_default_parts(self):
        assert ChannelSpec().key == "awgn"
        assert ChannelSpec(kind="bsc").key == "bsc"
        assert (
            ChannelSpec(kind="rayleigh", params={"block_length": 8}).key
            == "rayleigh-block-length8"
        )
        assert "amplitude2.0" in ChannelSpec(
            kind="awgn", modulator_params={"amplitude": 2.0}
        ).key

    def test_build_produces_working_pipeline(self):
        import numpy as np

        pipeline = ChannelSpec(kind="bsc", params={"crossover": 0.1}).build()
        llrs = pipeline.llrs(
            np.zeros((2, 8), dtype=np.uint8), 1.0, np.random.default_rng(0)
        )
        assert llrs.shape == (2, 8)

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown ChannelSpec keys"):
            ChannelSpec.from_dict({"kind": "awgn", "chanel_params": {}})

    def test_unknown_param_rejected_at_spec_time(self):
        with pytest.raises(ValueError, match="valid parameters"):
            ChannelSpec(kind="rayleigh", params={"blocklength": 8})


class TestDynamicErrorMessages:
    """Unknown-name errors list the registry's current names, not stale tuples."""

    def test_code_family_error_lists_registered_families(self):
        with pytest.raises(ValueError, match="family") as excinfo:
            CodeSpec(family="mystery")
        for name in component_names("code"):
            assert name in str(excinfo.value)

    def test_decoder_kind_error_lists_registered_kinds(self):
        with pytest.raises(ValueError, match="kind") as excinfo:
            DecoderSpec(kind="turbo")
        for name in component_names("decoder"):
            assert name in str(excinfo.value)

    def test_channel_kind_error_lists_registered_kinds(self):
        with pytest.raises(ValueError, match="kind") as excinfo:
            ChannelSpec(kind="carrier-pigeon")
        for name in component_names("channel"):
            assert name in str(excinfo.value)

    def test_errors_track_registry_contents(self):
        """A freshly registered name appears in the very next error message."""
        from repro.registry import temporary_component

        with temporary_component("channel", "test-ephemeral", lambda: None):
            with pytest.raises(ValueError) as excinfo:
                ChannelSpec(kind="nope")
            assert "test-ephemeral" in str(excinfo.value)
        with pytest.raises(ValueError) as excinfo:
            ChannelSpec(kind="nope")
        assert "test-ephemeral" not in str(excinfo.value)

    def test_config_from_dict_rejects_unknown_keys_with_pinned_message(self):
        """The docstring promises a raise (it protects resume) — pin it."""
        with pytest.raises(
            ValueError, match=r"unknown SimulationConfig keys: \['max_framez'\]"
        ):
            config_from_dict({"max_framez": 10})
        assert "unknown keys raise" in (config_from_dict.__doc__ or "").lower()


class TestChannelAxisCampaigns:
    def three_channel_spec(self, ebn0=(2.0, 4.0)) -> CampaignSpec:
        return CampaignSpec.from_dict({
            "name": "channels",
            "seed": 13,
            "ebn0": list(ebn0),
            "config": {
                "max_frames": 20, "target_frame_errors": 4,
                "batch_frames": 10, "all_zero_codeword": True,
            },
            "grid": {
                "codes": [{"family": "scaled", "circulant": 31}],
                "decoders": [{"kind": "nms", "iterations": 8}],
                "channels": [
                    {"kind": "awgn"},
                    {"kind": "bsc"},
                    {"kind": "rayleigh", "params": {"block_length": 31}},
                ],
            },
        })

    def test_grid_expands_channel_axis_with_keys_in_labels(self):
        spec = self.three_channel_spec()
        assert [e.label for e in spec.experiments] == [
            "nms-it8-awgn", "nms-it8-bsc", "nms-it8-rayleigh-block-length31",
        ]
        assert [e.channel.kind for e in spec.experiments] == [
            "awgn", "bsc", "rayleigh",
        ]

    def test_channel_params_can_be_grid_axes(self):
        experiments = expand_grid({
            "codes": [{"family": "scaled", "circulant": 31}],
            "decoders": [{"kind": "nms", "iterations": 8}],
            "channels": [{"kind": "rayleigh", "params": {"block_length": [8, 31]}}],
        })
        assert [e.channel.params["block_length"] for e in experiments] == [8, 31]
        assert len({e.label for e in experiments}) == 2

    def test_modulator_params_can_be_grid_axes_too(self):
        """A list-valued modulator parameter expands instead of failing at
        build time deep inside the scheduler."""
        experiments = expand_grid({
            "codes": [{"family": "scaled", "circulant": 31}],
            "decoders": [{"kind": "nms", "iterations": 8}],
            "channels": [
                {"kind": "awgn", "modulator_params": {"amplitude": [1.0, 2.0]}}
            ],
        })
        assert [e.channel.modulator_params["amplitude"] for e in experiments] == [
            1.0, 2.0,
        ]
        for experiment in experiments:
            assert experiment.channel.build().amplitude in (1.0, 2.0)
        assert len({e.label for e in experiments}) == 2

    def test_serial_matches_pooled_on_every_channel(self, tmp_path):
        spec = self.three_channel_spec(ebn0=(3.0,))
        serial = CampaignScheduler(
            spec, ResultStore.create(tmp_path / "serial", spec), workers=None
        ).run()
        pooled = CampaignScheduler(
            spec, ResultStore.create(tmp_path / "pooled", spec), workers=3
        ).run()
        for label, curve in serial.items():
            assert pooled[label].points == curve.points

    def test_run_resume_and_channel_addressed_reporting(self, tmp_path):
        spec = self.three_channel_spec()
        reference = CampaignScheduler(
            spec, ResultStore.create(tmp_path / "ref", spec), workers=None
        ).run()
        # Interrupt: pre-seed a store with a partial subset, then resume.
        partial = ResultStore.create(tmp_path / "partial", spec)
        partial.record_point("nms-it8-bsc", reference["nms-it8-bsc"].points[1])
        resumed = CampaignScheduler(spec, partial, workers=2).run()
        for label, curve in reference.items():
            assert resumed[label].points == curve.points
        # Curves are channel-addressed and filterable by channel metadata.
        from repro.analysis.campaign import CampaignReport, CurveSet

        curves = CurveSet.from_store(ResultStore.open(tmp_path / "partial"))
        assert curves.filter(channel__kind="bsc").labels == ["nms-it8-bsc"]
        assert set(curves.group_by("channel.kind")) == {
            ("awgn",), ("bsc",), ("rayleigh",),
        }
        report = CampaignReport.from_store(
            tmp_path / "partial", target_ber=1e-1, include_rates=False
        )
        by_label = {e.label: e for e in report.experiments}
        assert by_label["nms-it8-bsc"].channel_key == "bsc"
        text = report.to_text()
        assert "channel bsc" in text  # per-(code, channel) comparison tables
        assert "Channel" in text      # summary column


class TestBatchedGoldenCounts:
    """Golden-count fixture for the batched hot path.

    The counts below were recorded with the *serial* ``nms`` kind; the
    campaign here decodes through ``nms-batched`` (whole shards per
    ``decode_batch`` call, compacted early termination) and must reproduce
    them byte for byte — serial, pooled, and across a kill/resume cycle.
    """

    GOLDEN_BATCHED = {
        "nms": [
            {"ebn0_db": 2.0, "ber": 0.053629032258064514, "fer": 1.0,
             "bit_errors": 266, "frame_errors": 10, "bits": 4960, "frames": 10,
             "average_iterations": 8.0, "info_ber": 0.05321100917431193,
             "info_bit_errors": 232, "info_bits": 4360},
            {"ebn0_db": 5.0, "ber": 0.0, "fer": 0.0, "bit_errors": 0,
             "frame_errors": 0, "bits": 14880, "frames": 30,
             "average_iterations": 1.6666666666666667, "info_ber": 0.0,
             "info_bit_errors": 0, "info_bits": 13080},
        ],
    }

    def batched_spec(self) -> CampaignSpec:
        return CampaignSpec(
            name="batched-golden",
            seed=4321,
            ebn0=(2.0, 5.0),
            config=SimulationConfig(
                max_frames=30, target_frame_errors=5, batch_frames=10,
                all_zero_codeword=False,
            ),
            experiments=[
                ExperimentSpec(
                    label="nms",
                    code=CodeSpec(family="scaled", circulant=31),
                    decoder=DecoderSpec("nms-batched", 8),
                ),
            ],
        )

    @pytest.mark.parametrize("workers", [None, 2])
    def test_batched_campaign_reproduces_golden_counts(self, tmp_path, workers):
        spec = self.batched_spec()
        curves = CampaignScheduler(
            spec, ResultStore.create(tmp_path / "c", spec), workers=workers
        ).run()
        got = {
            label: [p.as_dict() for p in curve.points]
            for label, curve in curves.items()
        }
        assert got == self.GOLDEN_BATCHED

    def test_killed_pooled_campaign_resumes_to_golden_counts(self, tmp_path):
        """A partial store (as a killed pooled run leaves behind) resumed
        with a different worker count still lands exactly on the fixture."""
        spec = self.batched_spec()
        reference = CampaignScheduler(
            spec, ResultStore.create(tmp_path / "ref", spec), workers=2
        ).run()
        partial = ResultStore.create(tmp_path / "partial", spec)
        partial.record_point("nms", reference["nms"].points[0])
        scheduler = CampaignScheduler(spec, partial, workers=None)
        assert len(scheduler.pending()) == 1
        resumed = scheduler.run()
        got = {
            label: [p.as_dict() for p in curve.points]
            for label, curve in resumed.items()
        }
        assert got == self.GOLDEN_BATCHED


class TestPreRedesignCompatibility:
    """The registry/channel redesign must not invalidate anything historical."""

    #: Counts recorded by the pre-registry engine (hardcoded BPSK + AWGN in
    #: MonteCarloSimulator._transmit) for the spec below.  The redesigned
    #: pipeline must reproduce them byte for byte.  The only values ever
    #: re-recorded since: ``average_iterations``, when the iteration-count
    #: convention changed to count *executed* iterations (the channel
    #: syndrome is now checked at iteration 0, so a frame whose hard
    #: decisions already satisfy every check records 0 iterations instead
    #: of 1).  Every error/bit/frame count is untouched by that change.
    GOLDEN = {
        "nms": [
            {"ebn0_db": 2.0, "ber": 0.05161290322580645, "fer": 1.0,
             "bit_errors": 256, "frame_errors": 10, "bits": 4960, "frames": 10,
             "average_iterations": 8.0, "info_ber": 0.05022935779816514,
             "info_bit_errors": 219, "info_bits": 4360},
            {"ebn0_db": 6.5, "ber": 0.0, "fer": 0.0, "bit_errors": 0,
             "frame_errors": 0, "bits": 19840, "frames": 40,
             "average_iterations": 0.7, "info_ber": 0.0,
             "info_bit_errors": 0, "info_bits": 17440},
        ],
        "quantized": [
            {"ebn0_db": 2.0, "ber": 0.04858870967741936, "fer": 1.0,
             "bit_errors": 241, "frame_errors": 10, "bits": 4960, "frames": 10,
             "average_iterations": 8.0, "info_ber": 0.04724770642201835,
             "info_bit_errors": 206, "info_bits": 4360},
            {"ebn0_db": 6.5, "ber": 5.040322580645161e-05, "fer": 0.025,
             "bit_errors": 1, "frame_errors": 1, "bits": 19840, "frames": 40,
             "average_iterations": 0.925, "info_ber": 5.733944954128441e-05,
             "info_bit_errors": 1, "info_bits": 17440},
        ],
    }

    def golden_spec(self) -> CampaignSpec:
        return CampaignSpec(
            name="golden",
            seed=1234,
            ebn0=(2.0, 6.5),
            config=SimulationConfig(
                max_frames=40, target_frame_errors=6, batch_frames=10,
                all_zero_codeword=False,
            ),
            experiments=[
                ExperimentSpec(
                    label="nms",
                    code=CodeSpec(family="scaled", circulant=31),
                    decoder=DecoderSpec("nms", 8, params={"alpha": 1.25}),
                ),
                ExperimentSpec(
                    label="quantized",
                    code=CodeSpec(family="scaled", circulant=31),
                    decoder=DecoderSpec(
                        "quantized", 8,
                        params={"alpha": 1.25, "message_format": [6, 2]},
                    ),
                ),
            ],
        )

    @pytest.mark.parametrize("workers", [None, 2])
    def test_awgn_counts_byte_identical_to_pre_redesign_engine(
        self, tmp_path, workers
    ):
        spec = self.golden_spec()
        curves = CampaignScheduler(
            spec, ResultStore.create(tmp_path / "c", spec), workers=workers
        ).run()
        got = {
            label: [p.as_dict() for p in curve.points]
            for label, curve in curves.items()
        }
        assert got == self.GOLDEN

    def test_batched_decoder_reproduces_serial_campaign_counts(self, tmp_path):
        """Swapping ``nms`` for ``nms-batched`` in a spec is *only* a speed
        knob: the stored curve points are byte for byte the same."""
        spec = self.golden_spec()
        batched_spec = CampaignSpec(
            name=spec.name, seed=spec.seed, ebn0=spec.ebn0, config=spec.config,
            experiments=[
                ExperimentSpec(
                    label=e.label, code=e.code,
                    decoder=DecoderSpec(
                        "nms-batched" if e.decoder.kind == "nms" else e.decoder.kind,
                        e.decoder.iterations, params=e.decoder.params,
                    ),
                )
                for e in spec.experiments
            ],
        )
        curves = CampaignScheduler(
            batched_spec, ResultStore.create(tmp_path / "b", batched_spec),
            workers=None,
        ).run()
        got = {
            label: [p.as_dict() for p in curve.points]
            for label, curve in curves.items()
        }
        assert got == self.GOLDEN

    def test_pre_channel_axis_spec_json_loads_unchanged(self):
        """A spec dict written before this PR (no channel keys) still loads."""
        legacy = {
            "name": "legacy",
            "seed": 7,
            "ebn0": [2.0, 4.0],
            "experiments": [
                {
                    "label": "nms",
                    "code": {"family": "scaled", "circulant": 31},
                    "decoder": {"kind": "nms", "iterations": 8},
                }
            ],
        }
        spec = CampaignSpec.from_dict(legacy)
        assert spec.experiments[0].channel == ChannelSpec()
        # And its dict form is unchanged by the round trip (no channel key).
        assert spec.as_dict()["experiments"][0] == legacy["experiments"][0]

    def test_legacy_curve_file_without_channel_metadata_is_adopted(self, tmp_path):
        """Stores written before the channel axis resume without --fresh."""
        spec = tiny_spec()
        store = ResultStore.create(tmp_path / "c", spec)
        point = next(iter(
            CampaignScheduler(
                spec, ResultStore.create(tmp_path / "ref", spec), workers=None
            ).run().values()
        )).points[0]
        store.record_point("nms", point)
        # Strip the channel field, as a pre-redesign writer would have.
        path = store.curve_path("nms")
        data = json.loads(path.read_text())
        assert data["metadata"].pop("channel") == {"kind": "awgn"}
        path.write_text(json.dumps(data))
        reopened = ResultStore.open(tmp_path / "c")
        assert reopened.curve_problem("nms") is None
        assert reopened.completed_ebn0("nms") == {point.ebn0_db}
        # The stamped metadata now carries the default channel again.
        assert reopened.curve("nms").metadata["channel"] == {"kind": "awgn"}

    def test_legacy_curve_is_not_adopted_by_non_default_channel(self, tmp_path):
        """A channel-less curve is AWGN — a BSC experiment must reject it."""
        code = CodeSpec(family="scaled", circulant=31)
        spec = CampaignSpec(
            name="test-campaign", seed=7, ebn0=(2.0, 4.0), config=TINY_CONFIG,
            experiments=[
                ExperimentSpec(
                    "nms", code, DecoderSpec("nms", 8),
                    channel=ChannelSpec(kind="bsc"),
                ),
                ExperimentSpec("min-sum", code, DecoderSpec("min-sum", 8)),
            ],
        )
        store = ResultStore.create(tmp_path / "c", spec)
        curve = store.curve("nms")
        from repro.sim.results import SimulationPoint

        store.record_point(
            "nms",
            SimulationPoint(ebn0_db=2.0, ber=0.1, fer=0.5, bit_errors=1,
                            frame_errors=1, bits=10, frames=2),
        )
        path = store.curve_path("nms")
        data = json.loads(path.read_text())
        del data["metadata"]["channel"]
        path.write_text(json.dumps(data))
        reopened = ResultStore.open(tmp_path / "c")
        problem = reopened.curve_problem("nms")
        assert problem is not None and "different campaign spec" in problem

    def test_stray_dedicated_field_is_ignored_like_pre_registry_builders(self):
        """Pre-PR specs could carry e.g. a rate on a 'scaled' code; the old
        builders dropped it silently, so stored manifests must keep loading."""
        spec = CodeSpec.from_dict({"family": "scaled", "circulant": 31, "rate": "1/2"})
        assert spec.build().block_length == 496  # rate ignored, as before
        assert spec.as_dict()["rate"] == "1/2"   # ...but still persisted
        # Free-form params (new in this redesign) stay strict.
        with pytest.raises(ValueError, match="valid parameters"):
            CodeSpec(family="scaled", circulant=31, params={"ratee": "1/2"})
