"""Unit tests for repro.decode.messages (edge structure and update kernels)."""

import numpy as np
import pytest

from repro.codes.parity_check import ParityCheckMatrix
from repro.decode.messages import EdgeStructure


@pytest.fixture
def small_structure(hamming_pcm):
    return EdgeStructure(hamming_pcm)


def brute_force_min_sum(pcm, bit_to_check, scale=1.0, offset=0.0):
    """Reference check-node update computed edge by edge."""
    check_idx, bit_idx = pcm.edges()
    out = np.zeros_like(bit_to_check)
    for frame in range(bit_to_check.shape[0]):
        for e in range(check_idx.size):
            same_check = np.nonzero(check_idx == check_idx[e])[0]
            others = same_check[same_check != e]
            values = bit_to_check[frame, others]
            sign = np.prod(np.sign(values)) if values.size else 1.0
            sign = 1.0 if sign == 0 else sign
            magnitude = np.min(np.abs(values)) if values.size else 0.0
            magnitude = max(magnitude - offset, 0.0) * scale
            out[frame, e] = sign * magnitude
    return out


def brute_force_sum_product(pcm, bit_to_check):
    """Reference BP check-node update computed edge by edge."""
    check_idx, _ = pcm.edges()
    out = np.zeros_like(bit_to_check)
    for frame in range(bit_to_check.shape[0]):
        for e in range(check_idx.size):
            same_check = np.nonzero(check_idx == check_idx[e])[0]
            others = same_check[same_check != e]
            product = np.prod(np.tanh(bit_to_check[frame, others] / 2.0))
            product = np.clip(product, -1 + 1e-12, 1 - 1e-12)
            out[frame, e] = 2.0 * np.arctanh(product)
    return out


class TestStructure:
    def test_edge_counts(self, small_structure, hamming_pcm):
        assert small_structure.num_edges == hamming_pcm.num_edges
        assert small_structure.num_bits == 7
        assert small_structure.num_checks == 3

    def test_sum_per_bit_matches_bincount(self, small_structure, rng):
        values = rng.normal(size=(2, small_structure.num_edges))
        totals = small_structure.sum_per_bit(values)
        for frame in range(2):
            expected = np.bincount(
                small_structure.edge_bit, weights=values[frame], minlength=7
            )
            assert np.allclose(totals[frame], expected)

    def test_sum_per_check_matches_bincount(self, small_structure, rng):
        values = rng.normal(size=(3, small_structure.num_edges))
        totals = small_structure.sum_per_check(values)
        for frame in range(3):
            expected = np.bincount(
                small_structure.edge_check, weights=values[frame], minlength=3
            )
            assert np.allclose(totals[frame], expected)

    def test_gather_inverse_of_sum_shapes(self, small_structure, rng):
        per_bit = rng.normal(size=(1, 7))
        gathered = small_structure.gather_bits(per_bit)
        assert gathered.shape == (1, small_structure.num_edges)


class TestMinSumKernel:
    def test_matches_brute_force(self, hamming_pcm, rng):
        structure = EdgeStructure(hamming_pcm)
        messages = rng.normal(size=(3, structure.num_edges))
        fast = structure.min_sum_extrinsic(messages)
        slow = brute_force_min_sum(hamming_pcm, messages)
        assert np.allclose(fast, slow)

    def test_scale_and_offset(self, hamming_pcm, rng):
        structure = EdgeStructure(hamming_pcm)
        messages = rng.normal(size=(2, structure.num_edges))
        assert np.allclose(
            structure.min_sum_extrinsic(messages, scale=0.8),
            brute_force_min_sum(hamming_pcm, messages, scale=0.8),
        )
        assert np.allclose(
            structure.min_sum_extrinsic(messages, offset=0.3),
            brute_force_min_sum(hamming_pcm, messages, offset=0.3),
        )

    def test_duplicate_minimum_handled(self, hamming_pcm):
        structure = EdgeStructure(hamming_pcm)
        # All magnitudes equal: the extrinsic magnitude must stay that value.
        messages = np.ones((1, structure.num_edges))
        out = structure.min_sum_extrinsic(messages)
        assert np.allclose(np.abs(out), 1.0)

    def test_matches_brute_force_on_qc_code(self, scaled_code, rng):
        pcm = scaled_code.parity_check_matrix()
        structure = EdgeStructure(pcm)
        messages = rng.normal(size=(1, structure.num_edges))
        fast = structure.min_sum_extrinsic(messages)
        # Only check a subset of edges against brute force (the full brute
        # force on 992 edges x 32-degree checks is still fast enough).
        slow = brute_force_min_sum(pcm, messages)
        assert np.allclose(fast, slow)


class TestSumProductKernel:
    def test_matches_brute_force(self, hamming_pcm, rng):
        structure = EdgeStructure(hamming_pcm)
        messages = rng.normal(size=(2, structure.num_edges))
        assert np.allclose(
            structure.sum_product_extrinsic(messages),
            brute_force_sum_product(hamming_pcm, messages),
            atol=1e-6,
        )

    def test_min_sum_upper_bounds_bp(self, hamming_pcm, rng):
        """|min-sum output| >= |BP output| on every edge (the known bias)."""
        structure = EdgeStructure(hamming_pcm)
        messages = rng.normal(size=(4, structure.num_edges))
        ms = np.abs(structure.min_sum_extrinsic(messages))
        bp = np.abs(structure.sum_product_extrinsic(messages))
        assert (ms >= bp - 1e-9).all()

    def test_signs_agree(self, hamming_pcm, rng):
        structure = EdgeStructure(hamming_pcm)
        messages = rng.normal(size=(2, structure.num_edges)) * 3
        ms = structure.min_sum_extrinsic(messages)
        bp = structure.sum_product_extrinsic(messages)
        nonzero = (np.abs(ms) > 1e-9) & (np.abs(bp) > 1e-9)
        assert np.array_equal(np.sign(ms[nonzero]), np.sign(bp[nonzero]))


class TestBitNodeUpdate:
    def test_posterior_is_channel_plus_all_messages(self, small_structure, rng):
        llrs = rng.normal(size=(2, 7))
        check_to_bit = rng.normal(size=(2, small_structure.num_edges))
        _, posterior = small_structure.bit_node_update(llrs, check_to_bit)
        expected = llrs + small_structure.sum_per_bit(check_to_bit)
        assert np.allclose(posterior, expected)

    def test_extrinsic_excludes_own_message(self, small_structure, rng):
        llrs = rng.normal(size=(1, 7))
        check_to_bit = rng.normal(size=(1, small_structure.num_edges))
        bit_to_check, posterior = small_structure.bit_node_update(llrs, check_to_bit)
        gathered = small_structure.gather_bits(posterior)
        assert np.allclose(bit_to_check, gathered - check_to_bit)

    def test_syndrome_ok(self, small_structure):
        zero = np.zeros((2, 7), dtype=np.uint8)
        assert small_structure.syndrome_ok(zero).tolist() == [True, True]
