"""Unit tests for repro.core.schedule and repro.core.throughput (Table 1)."""

import pytest

from repro.core.configs import high_speed_architecture, low_cost_architecture
from repro.core.schedule import IterationSchedule, PhaseKind
from repro.core.throughput import ThroughputModel


class TestIterationSchedule:
    def test_ccsds_phase_lengths(self):
        schedule = IterationSchedule.from_parameters(low_cost_architecture())
        # 8176 bits / 16 BN units = 511 cycles; 1022 checks / 2 CN units = 511.
        assert schedule.bn_phase_cycles == 511
        assert schedule.cn_phase_cycles == 511
        assert schedule.cycles_per_iteration == 511 + 511 + 78

    def test_cycles_per_frame_linear_in_iterations(self):
        schedule = IterationSchedule.from_parameters(low_cost_architecture())
        ten = schedule.cycles_per_frame(10)
        twenty = schedule.cycles_per_frame(20)
        assert twenty - ten == 10 * schedule.cycles_per_iteration

    def test_high_speed_schedule_identical_to_low_cost(self):
        """Extra processing blocks do not change the per-frame schedule."""
        low = IterationSchedule.from_parameters(low_cost_architecture())
        high = IterationSchedule.from_parameters(high_speed_architecture())
        assert low.cycles_per_iteration == high.cycles_per_iteration

    def test_phase_expansion(self):
        schedule = IterationSchedule.from_parameters(
            low_cost_architecture(frame_overhead_cycles=100)
        )
        phases = schedule.phases(3)
        assert phases[0].kind is PhaseKind.FRAME_IO
        assert sum(p.cycles for p in phases) == schedule.cycles_per_frame(3)
        bn_phases = [p for p in phases if p.kind is PhaseKind.BIT_NODE]
        assert len(bn_phases) == 3

    def test_invalid_iterations(self):
        schedule = IterationSchedule.from_parameters(low_cost_architecture())
        with pytest.raises(ValueError):
            schedule.cycles_per_frame(0)


class TestThroughputTable1:
    """Reproduce Table 1 of the paper: 130/70/25 Mbps and 1040/560/200 Mbps."""

    @pytest.mark.parametrize(
        "iterations,expected_mbps,tolerance",
        [(10, 130.0, 0.08), (18, 70.0, 0.08), (50, 25.0, 0.08)],
    )
    def test_low_cost_throughput(self, iterations, expected_mbps, tolerance):
        point = ThroughputModel(low_cost_architecture()).point(iterations)
        assert point.throughput_mbps == pytest.approx(expected_mbps, rel=tolerance)

    @pytest.mark.parametrize(
        "iterations,expected_mbps,tolerance",
        [(10, 1040.0, 0.08), (18, 560.0, 0.08), (50, 200.0, 0.08)],
    )
    def test_high_speed_throughput(self, iterations, expected_mbps, tolerance):
        point = ThroughputModel(high_speed_architecture()).point(iterations)
        assert point.throughput_mbps == pytest.approx(expected_mbps, rel=tolerance)

    def test_high_speed_is_exactly_eight_times_low_cost(self):
        low = ThroughputModel(low_cost_architecture())
        high = ThroughputModel(high_speed_architecture())
        for iterations in (10, 18, 50):
            ratio = high.point(iterations).throughput_bps / low.point(iterations).throughput_bps
            assert ratio == pytest.approx(8.0)

    def test_throughput_decreases_with_iterations(self):
        model = ThroughputModel(low_cost_architecture())
        sweep = model.sweep((10, 18, 50))
        rates = [p.throughput_bps for p in sweep]
        assert rates[0] > rates[1] > rates[2]

    def test_sweep_default_matches_table1_rows(self):
        sweep = ThroughputModel(low_cost_architecture()).sweep()
        assert [p.iterations for p in sweep] == [10, 18, 50]

    def test_iterations_for_throughput(self):
        model = ThroughputModel(low_cost_architecture())
        # The paper: 18 iterations sustain ~70 Mbps.
        assert model.iterations_for_throughput(70e6) >= 18
        assert model.iterations_for_throughput(130e6) < 18
        with pytest.raises(ValueError):
            model.iterations_for_throughput(0)

    def test_clock_scaling(self):
        base = ThroughputModel(low_cost_architecture()).point(18)
        slower = ThroughputModel(low_cost_architecture(clock_frequency_hz=100e6)).point(18)
        assert slower.throughput_bps == pytest.approx(base.throughput_bps / 2)
