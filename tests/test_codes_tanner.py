"""Unit tests for repro.codes.tanner."""

import numpy as np
import pytest

from repro.codes.parity_check import ParityCheckMatrix
from repro.codes.tanner import TannerGraph


@pytest.fixture
def cycle4_graph():
    """Two bits sharing two checks — the smallest 4-cycle."""
    h = np.array([[1, 1, 0], [1, 1, 1]], dtype=np.uint8)
    return TannerGraph(ParityCheckMatrix(h))


@pytest.fixture
def tree_graph():
    """A cycle-free (tree) Tanner graph."""
    h = np.array([[1, 1, 0, 0], [0, 0, 1, 1]], dtype=np.uint8)
    return TannerGraph(ParityCheckMatrix(h))


class TestAdjacency:
    def test_counts(self, hamming_pcm):
        graph = TannerGraph(hamming_pcm)
        assert graph.num_bit_nodes == 7
        assert graph.num_check_nodes == 3
        assert graph.num_edges == 12

    def test_neighbourhoods_consistent(self, hamming_pcm):
        graph = TannerGraph(hamming_pcm)
        for check in range(graph.num_check_nodes):
            for bit in graph.bits_of_check(check):
                assert check in graph.checks_of_bit(int(bit))

    def test_degrees_match_pcm(self, scaled_code):
        pcm = scaled_code.parity_check_matrix()
        graph = TannerGraph(pcm)
        assert len(graph.bits_of_check(0)) == pcm.check_degrees()[0]
        assert len(graph.checks_of_bit(0)) == pcm.bit_degrees()[0]


class TestGirth:
    def test_four_cycle_detected(self, cycle4_graph):
        assert cycle4_graph.girth() == 4
        assert cycle4_graph.has_four_cycles()

    def test_tree_has_no_cycle(self, tree_graph):
        assert tree_graph.girth() is None
        assert not tree_graph.has_four_cycles()

    def test_six_cycle(self):
        # A ring of 3 bits and 3 checks has girth 6.
        h = np.array([[1, 1, 0], [0, 1, 1], [1, 0, 1]], dtype=np.uint8)
        graph = TannerGraph(ParityCheckMatrix(h))
        assert graph.girth() == 6
        assert not graph.has_four_cycles()

    def test_sampled_girth_on_qc_code(self):
        from repro.codes import build_scaled_ccsds_code

        code = build_scaled_ccsds_code(127)
        graph = TannerGraph(code.parity_check_matrix())
        girth = graph.girth(max_bits=127)
        assert girth is not None
        assert girth >= 6  # the 127-circulant construction is 4-cycle free


class TestStatsAndExport:
    def test_stats(self, hamming_pcm):
        stats = TannerGraph(hamming_pcm).stats()
        assert stats.num_bit_nodes == 7
        assert stats.num_check_nodes == 3
        assert stats.bit_degree_max == 3
        assert stats.check_degree_min == 4
        assert stats.girth == 4

    def test_networkx_export(self, hamming_pcm):
        networkx = pytest.importorskip("networkx")
        graph = TannerGraph(hamming_pcm).to_networkx()
        assert graph.number_of_nodes() == 10
        assert graph.number_of_edges() == 12
        assert networkx.algorithms.bipartite.is_bipartite(graph)
