"""Unit tests for repro.utils.bits."""

import numpy as np
import pytest

from repro.utils.bits import (
    bits_to_bytes,
    bits_to_int,
    bytes_to_bits,
    hamming_distance,
    hamming_weight,
    hard_decision,
    int_to_bits,
    random_bits,
)


class TestRandomBits:
    def test_length_and_alphabet(self, rng):
        bits = random_bits(100, rng)
        assert bits.shape == (100,)
        assert set(np.unique(bits)).issubset({0, 1})

    def test_batch_shape(self, rng):
        bits = random_bits(10, rng, shape=(4, 3))
        assert bits.shape == (4, 3, 10)

    def test_seed_reproducibility(self):
        assert np.array_equal(random_bits(50, 7), random_bits(50, 7))


class TestHardDecision:
    def test_positive_llr_is_zero_bit(self):
        assert hard_decision(np.array([3.0, -2.0, 0.5])).tolist() == [0, 1, 0]

    def test_zero_llr_resolves_to_one(self):
        assert hard_decision(np.array([0.0]))[0] == 1

    def test_batch(self):
        llrs = np.array([[1.0, -1.0], [-0.1, 0.1]])
        assert hard_decision(llrs).tolist() == [[0, 1], [1, 0]]


class TestHammingMetrics:
    def test_weight(self):
        assert hamming_weight([0, 1, 1, 0, 1]) == 3

    def test_distance(self):
        assert hamming_distance([0, 1, 1], [1, 1, 0]) == 2

    def test_distance_shape_mismatch(self):
        with pytest.raises(ValueError):
            hamming_distance([0, 1], [0, 1, 0])

    def test_distance_zero_for_equal(self, rng):
        v = random_bits(64, rng)
        assert hamming_distance(v, v) == 0


class TestPacking:
    def test_roundtrip(self, rng):
        bits = random_bits(37, rng)
        packed = bits_to_bytes(bits)
        assert np.array_equal(bytes_to_bits(packed, 37), bits)

    def test_known_value(self):
        assert bits_to_bytes([1, 0, 1, 0, 0, 0, 0, 0]) == b"\xa0"

    def test_int_roundtrip(self):
        for value in (0, 1, 5, 255, 1023):
            width = 10
            assert bits_to_int(int_to_bits(value, width)) == value

    def test_int_too_wide(self):
        with pytest.raises(ValueError):
            int_to_bits(16, 4)

    def test_negative_int_rejected(self):
        with pytest.raises(ValueError):
            int_to_bits(-1, 4)
