"""Unit tests for the flooding decoders (min-sum family and sum-product)."""

import numpy as np
import pytest

from repro.channel.awgn import ebn0_to_sigma
from repro.channel.llr import channel_llrs
from repro.channel.modulation import BPSKModulator
from repro.decode import (
    FixedIterations,
    MinSumDecoder,
    NormalizedMinSumDecoder,
    OffsetMinSumDecoder,
    SumProductDecoder,
)
from repro.utils.bits import random_bits


def transmit(codewords, ebn0_db, rate, rng):
    sigma = ebn0_to_sigma(ebn0_db, rate)
    symbols = BPSKModulator().modulate(codewords)
    received = symbols + rng.normal(0.0, sigma, size=symbols.shape)
    return channel_llrs(received, sigma)


@pytest.fixture(scope="module")
def noisy_batch(request):
    """A batch of noisy codewords of the scaled code at a workable Eb/N0."""
    code = request.getfixturevalue("scaled_code")
    encoder = request.getfixturevalue("scaled_encoder")
    rng = np.random.default_rng(77)
    info = rng.integers(0, 2, size=(12, encoder.dimension), dtype=np.uint8)
    codewords = encoder.encode(info)
    llrs = transmit(codewords, 5.0, code.rate, rng)
    return codewords, llrs


DECODER_CLASSES = [
    MinSumDecoder,
    NormalizedMinSumDecoder,
    OffsetMinSumDecoder,
    SumProductDecoder,
]


class TestDecodersCommon:
    @pytest.mark.parametrize("decoder_cls", DECODER_CLASSES)
    def test_noiseless_decoding_is_exact(self, scaled_code, scaled_encoder, decoder_cls, rng):
        info = random_bits(scaled_encoder.dimension, rng)
        codeword = scaled_encoder.encode(info)
        llrs = 10.0 * (1.0 - 2.0 * codeword.astype(np.float64))
        result = decoder_cls(scaled_code, max_iterations=5).decode(llrs)
        assert bool(result.converged)
        assert np.array_equal(result.bits, codeword)
        assert int(result.iterations) == 0  # syndrome already clean at iteration 0

    @pytest.mark.parametrize("decoder_cls", DECODER_CLASSES)
    def test_moderate_noise_mostly_corrected(self, scaled_code, noisy_batch, decoder_cls):
        codewords, llrs = noisy_batch
        result = decoder_cls(scaled_code, max_iterations=30).decode(llrs)
        bit_errors = int((result.bits != codewords).sum())
        total_bits = codewords.size
        # At 5 dB the scaled code corrects the overwhelming majority of bits.
        assert bit_errors / total_bits < 0.01

    @pytest.mark.parametrize("decoder_cls", DECODER_CLASSES)
    def test_single_frame_interface(self, scaled_code, noisy_batch, decoder_cls):
        codewords, llrs = noisy_batch
        result = decoder_cls(scaled_code, max_iterations=10).decode(llrs[0])
        assert result.bits.shape == (scaled_code.block_length,)
        assert result.posterior_llrs.shape == (scaled_code.block_length,)
        assert result.batch_size == 1

    def test_wrong_llr_length_rejected(self, scaled_code):
        decoder = NormalizedMinSumDecoder(scaled_code)
        with pytest.raises(ValueError):
            decoder.decode(np.zeros(scaled_code.block_length + 1))

    def test_invalid_iterations(self, scaled_code):
        with pytest.raises(ValueError):
            MinSumDecoder(scaled_code, max_iterations=0)


class TestNormalizedMinSum:
    def test_alpha_validation(self, scaled_code):
        with pytest.raises(ValueError):
            NormalizedMinSumDecoder(scaled_code, alpha=0.9)

    def test_scale_property(self, scaled_code):
        decoder = NormalizedMinSumDecoder(scaled_code, alpha=1.25)
        assert decoder.scale == pytest.approx(0.8)

    def test_normalization_beats_plain_min_sum(self, scaled_code, scaled_encoder):
        """The paper's core algorithmic claim at the message level: scaled
        min-sum needs fewer errors than plain min-sum at the same Eb/N0."""
        rng = np.random.default_rng(3)
        info = rng.integers(0, 2, size=(40, scaled_encoder.dimension), dtype=np.uint8)
        codewords = scaled_encoder.encode(info)
        llrs = transmit(codewords, 4.25, scaled_code.rate, rng)
        plain = MinSumDecoder(scaled_code, max_iterations=18).decode(llrs)
        scaled = NormalizedMinSumDecoder(scaled_code, max_iterations=18, alpha=1.25).decode(llrs)
        plain_errors = int((plain.bits != codewords).sum())
        scaled_errors = int((scaled.bits != codewords).sum())
        assert scaled_errors <= plain_errors


class TestOffsetMinSum:
    def test_beta_validation(self, scaled_code):
        with pytest.raises(ValueError):
            OffsetMinSumDecoder(scaled_code, beta=-0.1)

    def test_zero_beta_equals_plain_min_sum(self, scaled_code, noisy_batch):
        codewords, llrs = noisy_batch
        plain = MinSumDecoder(scaled_code, max_iterations=8).decode(llrs)
        offset = OffsetMinSumDecoder(scaled_code, max_iterations=8, beta=0.0).decode(llrs)
        assert np.array_equal(plain.bits, offset.bits)


class TestStoppingBehaviour:
    def test_fixed_iterations_runs_to_the_end(self, scaled_code, noisy_batch):
        codewords, llrs = noisy_batch
        decoder = NormalizedMinSumDecoder(
            scaled_code, max_iterations=12, stopping=FixedIterations()
        )
        result = decoder.decode(llrs)
        assert (np.asarray(result.iterations) == 12).all()

    def test_early_stopping_uses_fewer_iterations(self, scaled_code, noisy_batch):
        codewords, llrs = noisy_batch
        result = NormalizedMinSumDecoder(scaled_code, max_iterations=30).decode(llrs)
        converged = np.asarray(result.converged)
        iterations = np.asarray(result.iterations)
        assert iterations[converged].max() < 30

    def test_converged_means_valid_codeword(self, scaled_code, noisy_batch):
        _, llrs = noisy_batch
        result = NormalizedMinSumDecoder(scaled_code, max_iterations=30).decode(llrs)
        flags = np.asarray(scaled_code.is_codeword(np.atleast_2d(result.bits)))
        assert np.array_equal(flags, np.asarray(result.converged))

    def test_result_metadata(self, scaled_code, noisy_batch):
        _, llrs = noisy_batch
        result = NormalizedMinSumDecoder(scaled_code, max_iterations=10).decode(llrs)
        assert result.batch_size == llrs.shape[0]
        assert 1 <= result.average_iterations <= 10
