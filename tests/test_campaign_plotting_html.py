"""Tests for the campaign publishing backend (plotting + HTML).

The tier-1 environment deliberately has *no* matplotlib, so the suite
covers both sides of the optional dependency: the degradation contract
(actionable errors, HTML renders without figures) always runs, and the
figure-producing paths run only where matplotlib exists (the CI
optional-deps leg installs it and runs this same file).
"""

import json
import re

import numpy as np
import pytest

from repro.analysis.campaign import (
    CampaignReport,
    CurveSet,
    PlottingUnavailableError,
    matplotlib_available,
    render_html,
)
from repro.analysis.campaign import plotting
from repro.cli import main
from repro.sim import SimulationConfig
from repro.sim.campaign import (
    CampaignSpec,
    CodeSpec,
    DecoderSpec,
    ExperimentSpec,
    ResultStore,
)
from repro.sim.results import SimulationCurve, SimulationPoint
from repro.utils.formatting import plain_value
from repro.utils.template import fill, html_escape, html_table

HAVE_MPL = matplotlib_available()
needs_mpl = pytest.mark.skipif(not HAVE_MPL, reason="matplotlib not installed")
without_mpl = pytest.mark.skipif(HAVE_MPL, reason="matplotlib is installed")


def make_point(ebn0, ber, fer=None, frames=100):
    fer = ber * 10 if fer is None else fer
    return SimulationPoint(
        ebn0_db=float(ebn0), ber=float(ber), fer=float(min(fer, 1.0)),
        bit_errors=int(ber * 1e6), frame_errors=min(frames, int(fer * frames)),
        bits=10**6, frames=frames,
    )


def fabricated_store(tmp_path, name="pub"):
    code = CodeSpec(family="scaled", circulant=31)
    spec = CampaignSpec(
        name=name,
        seed=5,
        ebn0=(3.0, 4.0, 5.0),
        config=SimulationConfig(max_frames=100, target_frame_errors=50,
                                batch_frames=10, all_zero_codeword=True),
        experiments=[
            ExperimentSpec("nms", code, DecoderSpec("nms", 18, params={"alpha": 1.25})),
            ExperimentSpec("min-sum", code, DecoderSpec("min-sum", 18)),
        ],
    )
    store = ResultStore.create(tmp_path / name, spec)
    for label, shift in {"nms": 0.0, "min-sum": 0.4}.items():
        for ebn0 in spec.ebn0:
            ber = min(0.5, 10 ** (-1.0 - 1.5 * (ebn0 - shift - 3.0)))
            store.record_point(label, make_point(ebn0, ber))
    return store


# --------------------------------------------------------------------- #
# Degradation without matplotlib
# --------------------------------------------------------------------- #
class TestDegradation:
    @without_mpl
    def test_require_matplotlib_raises_actionable_error(self):
        with pytest.raises(PlottingUnavailableError, match="pip install matplotlib"):
            plotting.require_matplotlib()

    @without_mpl
    def test_waterfall_figure_raises_without_matplotlib(self, tmp_path):
        curves = CurveSet.from_store(fabricated_store(tmp_path))
        with pytest.raises(PlottingUnavailableError, match="matplotlib"):
            plotting.waterfall_figure(curves)

    @without_mpl
    def test_html_degrades_to_note(self, tmp_path):
        report = CampaignReport.from_store(fabricated_store(tmp_path), target_ber=1e-3)
        html = report.to_html()
        assert "No figures embedded" in html
        assert "pip install matplotlib" in html
        assert "data:image/svg+xml" not in html

    @without_mpl
    def test_html_figures_require_raises(self, tmp_path):
        report = CampaignReport.from_store(fabricated_store(tmp_path), target_ber=1e-3)
        with pytest.raises(PlottingUnavailableError):
            report.to_html(figures="require")

    @without_mpl
    def test_cli_plots_fails_with_install_hint(self, tmp_path, capsys):
        store = fabricated_store(tmp_path)
        code = main([
            "campaign", "report", str(store.directory),
            "--target-ber", "1e-3", "--plots", str(tmp_path / "figs"),
        ])
        captured = capsys.readouterr()
        assert code == 2
        assert "pip install matplotlib" in captured.err
        # Fail-fast: no half-rendered report on stdout.
        assert "Threshold crossings" not in captured.out

    def test_module_imports_without_matplotlib(self):
        # The import of repro.analysis.campaign at module top already proves
        # this; assert the availability probe agrees with reality.
        try:
            import matplotlib  # noqa: F401
            assert matplotlib_available()
        except ImportError:
            assert not matplotlib_available()

    def test_svg_to_base64_needs_no_matplotlib(self):
        assert plotting.svg_to_base64("<svg/>") == "PHN2Zy8+"


# --------------------------------------------------------------------- #
# HTML rendering (matplotlib-independent contract)
# --------------------------------------------------------------------- #
class TestHtmlReport:
    def test_two_renders_are_byte_identical(self, tmp_path):
        store = fabricated_store(tmp_path)
        first = CampaignReport.from_store(store, target_ber=1e-3).to_html()
        second = CampaignReport.from_store(
            ResultStore.open(store.directory), target_ber=1e-3
        ).to_html()
        assert first == second
        assert isinstance(first, str) and first.startswith("<!DOCTYPE html>")

    def test_contains_all_sections_and_provenance(self, tmp_path):
        report = CampaignReport.from_store(fabricated_store(tmp_path), target_ber=1e-3)
        html = report.to_html()
        for title, _, _ in report.sections():
            assert html_escape(title) in html
        assert "Provenance" in html
        assert "&quot;campaign&quot;: &quot;pub&quot;" in html
        assert "&quot;seed&quot;: 5" in html

    def test_render_html_format(self, tmp_path):
        report = CampaignReport.from_store(fabricated_store(tmp_path), target_ber=1e-3)
        assert report.render("html") == report.to_html()

    def test_explicit_figures_mapping_is_embedded(self, tmp_path):
        report = CampaignReport.from_store(fabricated_store(tmp_path), target_ber=1e-3)
        html = render_html(report, figures={"waterfall-x": "<svg>fake</svg>"})
        assert "data:image/svg+xml;base64," in html
        assert plotting.svg_to_base64("<svg>fake</svg>") in html
        assert "waterfall-x" in html

    def test_no_figures_when_disabled(self, tmp_path):
        report = CampaignReport.from_store(fabricated_store(tmp_path), target_ber=1e-3)
        html = render_html(report, figures=None)
        assert "data:image/svg+xml" not in html

    def test_bad_figures_argument_rejected(self, tmp_path):
        report = CampaignReport.from_store(fabricated_store(tmp_path), target_ber=1e-3)
        with pytest.raises(TypeError, match="figures"):
            render_html(report, figures=42)

    def test_problems_are_flagged(self, tmp_path):
        store = fabricated_store(tmp_path)
        store.curve_path("min-sum").write_text("{broken json")
        report = CampaignReport.from_store(store.directory, target_ber=1e-3)
        html = report.to_html()
        assert "unreadable results" in html

    def test_metadata_is_html_escaped(self, tmp_path):
        curve = SimulationCurve(
            label="<script>alert(1)</script>",
            metadata={"campaign": '<img src=x onerror="pwn()">'},
        )
        curve.add(make_point(3.0, 1e-2))
        report = CampaignReport(
            CurveSet.from_curves({curve.label: curve}),
            name="esc", target_ber=1e-3, include_rates=False,
        )
        html = report.to_html(figures=None)
        assert "<script>alert(1)</script>" not in html
        assert "onerror=\"pwn()\"" not in html

    def test_cli_format_html(self, tmp_path, capsys):
        store = fabricated_store(tmp_path)
        out_file = tmp_path / "report.html"
        assert main([
            "campaign", "report", str(store.directory),
            "--format", "html", "--target-ber", "1e-3",
            "--output", str(out_file),
        ]) == 0
        text = out_file.read_text()
        assert text.startswith("<!DOCTYPE html>")
        assert "Threshold crossings" in text


# --------------------------------------------------------------------- #
# numpy scalar metadata regression (group keys, labels, tables)
# --------------------------------------------------------------------- #
class TestNumpyMetadataRendering:
    def _numpy_curves(self):
        curves = {}
        for alpha in (np.float64(0.75), np.float64(1.25)):
            curve = SimulationCurve(
                label=f"nms-a{float(alpha):g}",
                metadata={"decoder": {"kind": "nms",
                                      "params": {"alpha": alpha}},
                          "seed": np.int64(7)},
            )
            curve.add(make_point(3.0, 1e-2))
            curve.add(make_point(4.0, 1e-4))
            curves[curve.label] = curve
        return CurveSet.from_curves(curves)

    def test_group_keys_are_plain_python(self):
        groups = self._numpy_curves().group_by("decoder.params.alpha")
        for key in groups:
            assert type(key[0]) is float
            assert "np.float64" not in str(key)

    def test_field_values_are_plain(self):
        record = self._numpy_curves().get("nms-a0.75")
        value = record.field("decoder.params.alpha")
        assert type(value) is float and value == 0.75
        assert type(record.field("seed")) is int

    def test_html_report_has_no_numpy_reprs(self):
        report = CampaignReport(
            self._numpy_curves(), name="np", target_ber=1e-3, include_rates=False,
        )
        html = report.to_html(figures=None)
        assert "np.float64" not in html
        assert "np.int64" not in html
        assert "0.75" in html

    def test_plain_value_recurses(self):
        nested = {"a": np.float64(1.5), "b": [np.int64(2), {"c": np.bool_(True)}]}
        plain = plain_value(nested)
        assert plain == {"a": 1.5, "b": [2, {"c": True}]}
        assert type(plain["a"]) is float
        assert type(plain["b"][0]) is int
        assert type(plain["b"][1]["c"]) is bool
        array = plain_value(np.array([1.0, 2.0]))
        assert array == [1.0, 2.0] and type(array) is list

    def test_plain_value_handles_zero_dimensional_arrays(self):
        # Regression: a 0-d array used to crash the list comprehension.
        scalar = plain_value(np.array(2.5))
        assert scalar == 2.5 and type(scalar) is float
        nested = plain_value({"x": np.array(3)})
        assert nested == {"x": 3} and type(nested["x"]) is int


# --------------------------------------------------------------------- #
# Template helpers
# --------------------------------------------------------------------- #
class TestTemplateHelpers:
    def test_fill_substitutes(self):
        assert fill("<p>${a} ${b}</p>", a="1", b="2") == "<p>1 2</p>"

    def test_fill_rejects_missing_and_unused(self):
        with pytest.raises(KeyError, match="without values"):
            fill("${a} ${b}", a="1")
        with pytest.raises(KeyError, match="without template placeholders"):
            fill("${a}", a="1", b="2")

    def test_html_escape(self):
        assert html_escape('<a href="x">&\'') == "&lt;a href=&quot;x&quot;&gt;&amp;&#x27;"

    def test_html_table_escapes_and_validates(self):
        table = html_table(["<h>"], [["<cell>"]], title="T & T")
        assert "&lt;h&gt;" in table and "&lt;cell&gt;" in table
        assert "<h2>T &amp; T</h2>" in table
        with pytest.raises(ValueError, match="columns"):
            html_table(["a", "b"], [["only-one"]])


# --------------------------------------------------------------------- #
# Figure rendering (runs only with matplotlib — the CI optional leg)
# --------------------------------------------------------------------- #
@needs_mpl
class TestFigures:
    def test_waterfall_figure_draws_all_curves(self, tmp_path):
        curves = CurveSet.from_store(fabricated_store(tmp_path))
        figure = plotting.waterfall_figure(curves, target=1e-3, rate=0.879)
        axis = figure.axes[0]
        labels = [line.get_label() for line in axis.get_lines()]
        assert any("nms" in label for label in labels)
        assert any("min-sum" in label for label in labels)
        assert any("uncoded BPSK" in label for label in labels)
        assert any("Shannon" in label for label in labels)
        assert axis.get_yscale() == "log"

    def test_waterfall_rejects_unknown_metric(self, tmp_path):
        curves = CurveSet.from_store(fabricated_store(tmp_path))
        with pytest.raises(ValueError, match="metric"):
            plotting.waterfall_figure(curves, metric="per")

    def test_figure_svg_is_deterministic(self, tmp_path):
        store = fabricated_store(tmp_path)

        def render():
            report = CampaignReport.from_store(store.directory, target_ber=1e-3)
            return plotting.render_report_figures_svg(report)

        first, second = render(), render()
        assert first.keys() == second.keys()
        assert first == second
        for svg in first.values():
            assert svg.lstrip().startswith("<?xml")
            assert not re.search(r"<dc:date>", svg)

    def test_html_embeds_figures(self, tmp_path):
        report = CampaignReport.from_store(fabricated_store(tmp_path), target_ber=1e-3)
        html = report.to_html()
        assert "data:image/svg+xml;base64," in html
        assert "No figures embedded" not in html
        # Still byte-identical across renders.
        assert html == CampaignReport.from_store(
            fabricated_store(tmp_path).directory, target_ber=1e-3
        ).to_html()

    def test_save_report_figures_writes_svg_and_png(self, tmp_path):
        report = CampaignReport.from_store(fabricated_store(tmp_path), target_ber=1e-3)
        written = plotting.save_report_figures(report, tmp_path / "figs")
        names = sorted(p.name for p in written)
        assert names == ["waterfall-scaled31.png", "waterfall-scaled31.svg"]
        for path in written:
            assert path.exists() and path.stat().st_size > 0

    def test_cli_plots_writes_figures(self, tmp_path, capsys):
        store = fabricated_store(tmp_path)
        figs = tmp_path / "figs"
        assert main([
            "campaign", "report", str(store.directory),
            "--target-ber", "1e-3", "--plots", str(figs),
        ]) == 0
        captured = capsys.readouterr()
        # Notices go to stderr so a piped report stays machine-parseable.
        assert "figure written to" in captured.err
        assert "figure written to" not in captured.out
        assert (figs / "waterfall-scaled31.svg").exists()

    def test_cli_plots_html_reuses_rendered_svgs(self, tmp_path, capsys):
        # --plots + --format html must embed the figures just written, and
        # (because SVG rendering is deterministic) produce the same bytes
        # as a plain --format html render.
        store = fabricated_store(tmp_path)
        with_plots = tmp_path / "with-plots.html"
        plain = tmp_path / "plain.html"
        assert main([
            "campaign", "report", str(store.directory), "--format", "html",
            "--target-ber", "1e-3", "--plots", str(tmp_path / "figs"),
            "--output", str(with_plots),
        ]) == 0
        assert main([
            "campaign", "report", str(store.directory), "--format", "html",
            "--target-ber", "1e-3", "--output", str(plain),
        ]) == 0
        assert "data:image/svg+xml;base64," in with_plots.read_text()
        assert with_plots.read_text() == plain.read_text()

    def test_zero_error_floor_points_do_not_crash(self):
        curve = SimulationCurve(label="floor")
        curve.add(make_point(3.0, 1e-2))
        curve.add(make_point(4.0, 1e-5))
        curve.add(SimulationPoint(ebn0_db=5.0, ber=0.0, fer=0.0, bit_errors=0,
                                  frame_errors=0, bits=10**6, frames=100))
        curves = CurveSet.from_curves({"floor": curve})
        figure = plotting.waterfall_figure(curves, target=1e-4)
        assert figure.axes[0].get_yscale() == "log"

    def test_curve_style_is_deterministic_and_cycles(self):
        assert plotting.curve_style(0) == plotting.curve_style(0)
        first = plotting.curve_style(0)
        wrapped = plotting.curve_style(len(plotting.WATERFALL_PALETTE))
        assert wrapped["color"] == first["color"]
        assert wrapped["linestyle"] != first["linestyle"]


def test_report_figures_requires_records_not_reports(tmp_path):
    # _records() rejects non-CurveRecord inputs with a clear message even
    # without matplotlib being importable at figure-draw time.
    with pytest.raises(TypeError, match="CurveRecord"):
        plotting._records([json.loads("{}")])


def test_group_frame_bits_recovered_from_stored_points(tmp_path):
    # The FER reference's frame length comes from bits/frames of any
    # measured point — no code build, no matplotlib needed.
    report = CampaignReport.from_store(fabricated_store(tmp_path), target_ber=1e-3)
    assert plotting._group_frame_bits(report.experiments) == 10**6 // 100
    assert plotting._group_frame_bits([]) is None


@needs_mpl
class TestChannelGroupedFigures:
    """Figures mirror the report tables: one per (code, channel) group, AWGN
    references only on AWGN figures."""

    def two_channel_store(self, tmp_path):
        from repro.sim.campaign import ChannelSpec

        code = CodeSpec(family="scaled", circulant=31)
        spec = CampaignSpec(
            name="chanfig",
            seed=6,
            ebn0=(3.0, 4.0, 5.0),
            config=SimulationConfig(max_frames=100, target_frame_errors=50,
                                    batch_frames=10, all_zero_codeword=True),
            experiments=[
                ExperimentSpec("nms-awgn", code, DecoderSpec("nms", 18)),
                ExperimentSpec("nms-bsc", code, DecoderSpec("nms", 18),
                               channel=ChannelSpec(kind="bsc")),
            ],
        )
        store = ResultStore.create(tmp_path / "chanfig", spec)
        for label, shift in {"nms-awgn": 0.0, "nms-bsc": 0.5}.items():
            for ebn0 in spec.ebn0:
                ber = min(0.5, 10 ** (-1.0 - 1.5 * (ebn0 - shift - 3.0)))
                store.record_point(label, make_point(ebn0, ber))
        return store

    def test_one_figure_per_code_channel_group(self, tmp_path):
        report = CampaignReport.from_store(
            self.two_channel_store(tmp_path), target_ber=1e-3, include_rates=False
        )
        figures = plotting.report_figures(report)
        assert sorted(figures) == [
            "waterfall-scaled31-awgn", "waterfall-scaled31-bsc",
        ]
        awgn_labels = [
            line.get_label() for line in figures["waterfall-scaled31-awgn"].axes[0].get_lines()
        ]
        bsc_labels = [
            line.get_label() for line in figures["waterfall-scaled31-bsc"].axes[0].get_lines()
        ]
        # Channels never share a figure...
        assert not any("bsc" in label for label in awgn_labels)
        # ...and the AWGN-derived references appear only on the AWGN figure.
        assert any("uncoded BPSK" in label for label in awgn_labels)
        assert not any("uncoded BPSK" in label for label in bsc_labels)
        assert not any("Shannon" in label for label in bsc_labels)

    def test_single_channel_names_stay_unsuffixed(self, tmp_path):
        """Historical figure names (CI greps waterfall-scaled31.svg) survive."""
        report = CampaignReport.from_store(
            fabricated_store(tmp_path), target_ber=1e-3, include_rates=False
        )
        assert sorted(plotting.report_figures(report)) == ["waterfall-scaled31"]
