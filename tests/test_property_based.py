"""Property-based tests (hypothesis) for the core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.channel.quantize import FixedPointFormat, UniformQuantizer
from repro.codes.parity_check import ParityCheckMatrix
from repro.codes.qc import CirculantSpec, QCLDPCCode
from repro.decode import BatchedMinSumDecoder, DecodeResult, MinSumDecoder
from repro.decode.messages import EdgeStructure
from repro.gf2.circulant import Circulant
from repro.gf2.dense import gf2_matmul, gf2_matvec, gf2_null_space, gf2_rank
from repro.gf2.polynomial import poly_add, poly_degree, poly_divmod, poly_mul, poly_trim
from repro.gf2.sparse import SparseBinaryMatrix

SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
binary_matrices = st.integers(2, 8).flatmap(
    lambda rows: st.integers(2, 10).flatmap(
        lambda cols: st.lists(
            st.lists(st.integers(0, 1), min_size=cols, max_size=cols),
            min_size=rows,
            max_size=rows,
        ).map(lambda data: np.array(data, dtype=np.uint8))
    )
)

polynomials = st.lists(st.integers(0, 1), min_size=1, max_size=12).map(
    lambda coeffs: np.array(coeffs, dtype=np.uint8)
)


def circulants(max_size: int = 16):
    return st.integers(2, max_size).flatmap(
        lambda size: st.lists(
            st.integers(0, size - 1), min_size=0, max_size=min(4, size), unique=True
        ).map(lambda positions: Circulant(size, tuple(positions)))
    )


# --------------------------------------------------------------------------- #
# GF(2) algebra invariants
# --------------------------------------------------------------------------- #
class TestGF2Properties:
    @SETTINGS
    @given(binary_matrices)
    def test_rank_bounded_by_dimensions(self, matrix):
        rank = gf2_rank(matrix)
        assert 0 <= rank <= min(matrix.shape)

    @SETTINGS
    @given(binary_matrices)
    def test_rank_equals_transpose_rank(self, matrix):
        assert gf2_rank(matrix) == gf2_rank(matrix.T)

    @SETTINGS
    @given(binary_matrices)
    def test_rank_nullity_theorem(self, matrix):
        nullity = gf2_null_space(matrix).shape[0]
        assert gf2_rank(matrix) + nullity == matrix.shape[1]

    @SETTINGS
    @given(binary_matrices)
    def test_null_space_vectors_are_in_kernel(self, matrix):
        for row in gf2_null_space(matrix):
            assert not gf2_matvec(matrix, row).any()


class TestPolynomialProperties:
    @SETTINGS
    @given(polynomials, polynomials)
    def test_addition_commutes(self, a, b):
        assert np.array_equal(poly_add(a, b), poly_add(b, a))

    @SETTINGS
    @given(polynomials, polynomials)
    def test_multiplication_commutes(self, a, b):
        assert np.array_equal(poly_mul(a, b), poly_mul(b, a))

    @SETTINGS
    @given(polynomials, polynomials)
    def test_degree_of_product(self, a, b):
        da, db = poly_degree(a), poly_degree(b)
        dp = poly_degree(poly_mul(a, b))
        if da < 0 or db < 0:
            assert dp < 0
        else:
            assert dp == da + db

    @SETTINGS
    @given(polynomials, polynomials)
    def test_division_identity(self, a, b):
        if poly_degree(b) < 0:
            return
        quotient, remainder = poly_divmod(a, b)
        reconstructed = poly_add(poly_mul(quotient, b), remainder)
        assert np.array_equal(poly_trim(reconstructed), poly_trim(a))


class TestCirculantProperties:
    @SETTINGS
    @given(circulants())
    def test_dense_is_circulant(self, circulant):
        dense = circulant.to_dense()
        for i in range(1, circulant.size):
            assert np.array_equal(dense[i], np.roll(dense[i - 1], 1))

    @SETTINGS
    @given(circulants(12), st.data())
    def test_product_matches_dense(self, a, data):
        b = data.draw(
            st.lists(
                st.integers(0, a.size - 1), min_size=0, max_size=min(3, a.size), unique=True
            ).map(lambda positions: Circulant(a.size, tuple(positions)))
        )
        expected = gf2_matmul(a.to_dense(), b.to_dense())
        assert np.array_equal((a @ b).to_dense(), expected)

    @SETTINGS
    @given(circulants(12))
    def test_transpose_involution(self, circulant):
        assert circulant.transpose().transpose() == circulant

    @SETTINGS
    @given(circulants(12))
    def test_weight_preserved_in_dense(self, circulant):
        dense = circulant.to_dense()
        assert (dense.sum(axis=1) == circulant.weight).all()


# --------------------------------------------------------------------------- #
# Sparse matrix / code invariants
# --------------------------------------------------------------------------- #
class TestSparseProperties:
    @SETTINGS
    @given(binary_matrices)
    def test_dense_sparse_roundtrip(self, matrix):
        assert np.array_equal(SparseBinaryMatrix.from_dense(matrix).to_dense(), matrix)

    @SETTINGS
    @given(binary_matrices, st.integers(0, 2**32 - 1))
    def test_matvec_matches_dense(self, matrix, seed):
        rng = np.random.default_rng(seed)
        vector = rng.integers(0, 2, size=matrix.shape[1], dtype=np.uint8)
        sparse = SparseBinaryMatrix.from_dense(matrix)
        assert np.array_equal(sparse.matvec(vector), gf2_matvec(matrix, vector))

    @SETTINGS
    @given(binary_matrices)
    def test_degree_sums_equal_nnz(self, matrix):
        pcm = ParityCheckMatrix(matrix)
        assert pcm.check_degrees().sum() == pcm.num_edges
        assert pcm.bit_degrees().sum() == pcm.num_edges


class TestQCCodeProperties:
    @SETTINGS
    @given(
        st.integers(3, 9),
        st.integers(1, 3),
        st.integers(2, 5),
        st.integers(0, 2**32 - 1),
    )
    def test_expansion_dimensions_and_weights(self, circulant_size, row_blocks, col_blocks, seed):
        rng = np.random.default_rng(seed)
        rows = []
        for _ in range(row_blocks):
            row = []
            for _ in range(col_blocks):
                weight = int(rng.integers(0, min(2, circulant_size)) + 1)
                positions = tuple(
                    int(p) for p in rng.choice(circulant_size, size=weight, replace=False)
                )
                row.append(positions)
            rows.append(tuple(row))
        spec = CirculantSpec(circulant_size, tuple(rows))
        code = QCLDPCCode(spec)
        pcm = code.parity_check_matrix()
        assert pcm.block_length == circulant_size * col_blocks
        assert pcm.num_checks == circulant_size * row_blocks
        assert pcm.num_edges == spec.total_edges()
        # Column degrees within one block column are all equal (circulant property).
        degrees = pcm.bit_degrees().reshape(col_blocks, circulant_size)
        assert (degrees == degrees[:, :1]).all()


# --------------------------------------------------------------------------- #
# Decoder kernel invariants
# --------------------------------------------------------------------------- #
class TestDecoderKernelProperties:
    @SETTINGS
    @given(binary_matrices, st.integers(0, 2**32 - 1))
    def test_min_sum_magnitude_never_exceeds_inputs(self, matrix, seed):
        if not matrix.any():
            return
        pcm = ParityCheckMatrix(matrix)
        structure = EdgeStructure(pcm)
        rng = np.random.default_rng(seed)
        messages = rng.normal(0, 3, size=(1, structure.num_edges))
        out = structure.min_sum_extrinsic(messages)
        max_in = np.abs(messages).max()
        assert (np.abs(out) <= max_in + 1e-9).all()

    @SETTINGS
    @given(binary_matrices, st.integers(0, 2**32 - 1))
    def test_bp_magnitude_bounded_by_min_sum(self, matrix, seed):
        if not matrix.any():
            return
        pcm = ParityCheckMatrix(matrix)
        structure = EdgeStructure(pcm)
        rng = np.random.default_rng(seed)
        messages = rng.normal(0, 2, size=(1, structure.num_edges))
        bp = structure.sum_product_extrinsic(messages)
        ms = structure.min_sum_extrinsic(messages)
        assert (np.abs(bp) <= np.abs(ms) + 1e-6).all()

    @SETTINGS
    @given(binary_matrices, st.integers(0, 2**32 - 1))
    def test_bit_node_update_linearity_in_channel(self, matrix, seed):
        pcm = ParityCheckMatrix(matrix)
        structure = EdgeStructure(pcm)
        rng = np.random.default_rng(seed)
        llrs = rng.normal(size=(1, pcm.block_length))
        c2b = rng.normal(size=(1, structure.num_edges))
        _, posterior = structure.bit_node_update(llrs, c2b)
        _, posterior_shifted = structure.bit_node_update(llrs + 1.0, c2b)
        assert np.allclose(posterior_shifted - posterior, 1.0)


# --------------------------------------------------------------------------- #
# Batched decoding invariants (small random parity-check matrices)
# --------------------------------------------------------------------------- #
class TestBatchedDecoderProperties:
    """The batched/serial contract on arbitrary small codes, not just the
    scaled CCSDS fixture: hypothesis draws the parity-check matrix."""

    @SETTINGS
    @given(binary_matrices, st.integers(0, 2**32 - 1))
    def test_batched_matches_serial_per_frame(self, matrix, seed):
        if not matrix.any():
            return
        pcm = ParityCheckMatrix(matrix)
        rng = np.random.default_rng(seed)
        llrs = rng.normal(0.5, 1.5, size=(5, pcm.block_length))
        got = BatchedMinSumDecoder(pcm, max_iterations=6).decode_batch(llrs)
        serial = MinSumDecoder(pcm, max_iterations=6)
        want = DecodeResult.stack([serial.decode(llrs[i]) for i in range(5)])
        assert np.array_equal(got.bits, want.bits)
        assert np.array_equal(got.iterations, want.iterations)
        assert np.array_equal(got.converged, want.converged)
        assert np.array_equal(got.posterior_llrs, want.posterior_llrs)

    @SETTINGS
    @given(binary_matrices, st.integers(0, 2**32 - 1))
    def test_outputs_frozen_at_convergence_iteration(self, matrix, seed):
        """Raising the iteration budget must not change any frame that
        already converged: its outputs were written (and its state dropped
        from the working set) at its convergence iteration."""
        if not matrix.any():
            return
        pcm = ParityCheckMatrix(matrix)
        rng = np.random.default_rng(seed)
        llrs = rng.normal(0.5, 1.5, size=(4, pcm.block_length))
        short = BatchedMinSumDecoder(pcm, max_iterations=6).decode_batch(llrs)
        long = BatchedMinSumDecoder(pcm, max_iterations=12).decode_batch(llrs)
        frozen = short.converged
        assert np.array_equal(long.iterations[frozen], short.iterations[frozen])
        assert np.array_equal(long.bits[frozen], short.bits[frozen])
        assert np.array_equal(
            long.posterior_llrs[frozen], short.posterior_llrs[frozen]
        )
        assert long.converged[frozen].all()

    @SETTINGS
    @given(binary_matrices, st.integers(0, 2**32 - 1))
    def test_codeword_in_records_zero_iterations(self, matrix, seed):
        if not matrix.any():
            return
        pcm = ParityCheckMatrix(matrix)
        rng = np.random.default_rng(seed)
        null = gf2_null_space(matrix)
        if null.shape[0]:
            combo = rng.integers(0, 2, size=null.shape[0], dtype=np.uint8)
            codeword = (combo @ null) % 2
        else:
            codeword = np.zeros(pcm.block_length, dtype=np.uint8)
        magnitudes = rng.uniform(0.5, 5.0, size=pcm.block_length)
        llrs = magnitudes * (1.0 - 2.0 * codeword.astype(np.float64))
        for decoder in (
            BatchedMinSumDecoder(pcm, max_iterations=6),
            MinSumDecoder(pcm, max_iterations=6),
        ):
            result = decoder.decode(llrs)
            assert bool(result.converged)
            assert int(result.iterations) == 0
            assert np.array_equal(result.bits, codeword)


# --------------------------------------------------------------------------- #
# Quantizer invariants
# --------------------------------------------------------------------------- #
class TestQuantizerProperties:
    @SETTINGS
    @given(
        st.integers(2, 10),
        st.integers(0, 5),
        st.lists(st.floats(-100, 100, allow_nan=False), min_size=1, max_size=30),
    )
    def test_quantization_is_idempotent_and_bounded(self, total_bits, fractional_bits, values):
        if fractional_bits >= total_bits:
            return
        quantizer = UniformQuantizer(FixedPointFormat(total_bits, fractional_bits))
        arr = np.array(values)
        once = quantizer.quantize(arr)
        assert np.array_equal(quantizer.quantize(once), once)
        low, high = quantizer.saturation
        assert (once >= low - 1e-12).all() and (once <= high + 1e-12).all()

    @SETTINGS
    @given(st.lists(st.floats(-50, 50, allow_nan=False), min_size=1, max_size=30))
    def test_quantization_error_bounded_by_half_step(self, values):
        fmt = FixedPointFormat(8, 2)
        quantizer = UniformQuantizer(fmt)
        arr = np.clip(np.array(values), -fmt.max_value, fmt.max_value)
        error = np.abs(quantizer.quantize(arr) - arr)
        assert (error <= fmt.step / 2 + 1e-12).all()


# --------------------------------------------------------------------------- #
# Fabric chaos invariants
# --------------------------------------------------------------------------- #
class TestFabricChaosProperties:
    """Random fault schedules over random small grids change nothing.

    The directed chaos battery (``test_fabric_chaos.py``) replays named
    schedules; this property sweeps the schedule space itself: any
    :meth:`FaultPlan.random` plan (worker ``w0`` is always spared, so the
    campaign must finish) over any fleet size and grid length leaves both
    the completed-point set and the stored curve bytes exactly equal to the
    serial engine's.
    """

    GRID = (2.0, 2.5, 3.0)
    _serial_cache: dict = {}

    @staticmethod
    def _spec(n_points):
        from repro.sim import SimulationConfig
        from repro.sim.campaign import (
            CampaignSpec,
            CodeSpec,
            DecoderSpec,
            ExperimentSpec,
        )

        return CampaignSpec(
            name="fabric-prop",
            seed=3,
            ebn0=TestFabricChaosProperties.GRID[:n_points],
            config=SimulationConfig(
                max_frames=30,
                target_frame_errors=5,
                batch_frames=10,
                all_zero_codeword=True,
            ),
            experiments=[
                ExperimentSpec(
                    label="nms",
                    code=CodeSpec(family="scaled", circulant=31),
                    decoder=DecoderSpec("nms", 8),
                )
            ],
        )

    @classmethod
    def _run(cls, n_points, fabric=None):
        import tempfile
        from pathlib import Path

        from repro.sim.campaign import CampaignScheduler, ResultStore

        with tempfile.TemporaryDirectory() as tmp:
            store = ResultStore.create(Path(tmp) / "store", cls._spec(n_points))
            CampaignScheduler(
                store.spec, store, telemetry=False, fabric=fabric
            ).run()
            completed = store.completed_ebn0("nms")
            curves = {
                path.name: path.read_bytes()
                for path in sorted(Path(store.directory).glob("*.curve.json"))
            }
        return completed, curves

    @classmethod
    def _serial(cls, n_points):
        cached = cls._serial_cache.get(n_points)
        if cached is None:
            cached = cls._run(n_points)
            cls._serial_cache[n_points] = cached
        return cached

    @settings(
        max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(
        seed=st.integers(0, 2**32 - 1),
        n_points=st.integers(1, 3),
        workers=st.integers(1, 4),
    )
    def test_random_fault_schedule_is_invisible(self, seed, n_points, workers):
        from repro.fabric import FabricConfig, FaultPlan, LeasePolicy

        plan = FaultPlan.random(seed, workers)
        fabric = FabricConfig(
            local_workers=workers,
            policy=LeasePolicy(
                ttl=5.0,
                max_attempts=6,
                backoff_base=1.0,
                backoff_factor=2.0,
                straggler_after=6.0,
            ),
            fault_plan=plan,
            wall_clock=False,
        )
        completed, curves = self._run(n_points, fabric=fabric)
        serial_completed, serial_curves = self._serial(n_points)
        assert completed == serial_completed == set(self.GRID[:n_points])
        assert curves == serial_curves
