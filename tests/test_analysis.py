"""Unit tests for the analysis package (density evolution, alpha tuning, quantization)."""

import numpy as np
import pytest

from repro.analysis.correction_factor import (
    bp_check_mean,
    empirical_mean_mismatch,
    min_sum_check_mean,
    optimize_alpha_density_evolution,
    optimize_alpha_empirical,
)
from repro.analysis.density_evolution import (
    gaussian_de_bp,
    gaussian_de_normalized_min_sum,
    phi_function,
    phi_inverse,
    threshold_search,
)
from repro.analysis.quantization_study import quantization_sweep
from repro.sim.montecarlo import SimulationConfig


class TestPhiFunction:
    def test_boundary_values(self):
        assert phi_function(np.array(0.0)) == pytest.approx(1.0)
        assert phi_function(np.array(50.0)) < 1e-4

    def test_monotone_decreasing(self):
        x = np.linspace(0.1, 20, 50)
        values = phi_function(x)
        assert (np.diff(values) < 0).all()

    def test_inverse_roundtrip(self):
        x = np.array([0.5, 1.0, 3.0, 8.0])
        assert np.allclose(phi_inverse(phi_function(x)), x, rtol=1e-3)


class TestDensityEvolution:
    def test_bp_converges_at_high_snr(self):
        assert gaussian_de_bp(5.0).converged

    def test_bp_fails_at_low_snr(self):
        assert not gaussian_de_bp(0.5, max_iterations=100).converged

    def test_trajectory_monotone_when_converging(self):
        result = gaussian_de_bp(5.0)
        trajectory = np.array(result.mean_trajectory)
        assert (np.diff(trajectory) >= -1e-9).all()

    def test_normalized_min_sum_converges_at_high_snr(self):
        result = gaussian_de_normalized_min_sum(5.0, alpha=1.25, samples=1500, rng=0)
        assert result.converged

    def test_threshold_search_brackets(self):
        threshold = threshold_search(
            lambda ebn0: gaussian_de_bp(ebn0, max_iterations=150),
            low_db=0.5,
            high_db=6.0,
            tolerance_db=0.1,
        )
        # The (4, 32)-regular ensemble threshold sits near 3 dB.
        assert 2.0 < threshold < 4.0

    def test_threshold_search_invalid_bracket(self):
        with pytest.raises(ValueError):
            threshold_search(lambda e: gaussian_de_bp(0.0, max_iterations=5), high_db=0.0)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            gaussian_de_normalized_min_sum(4.0, alpha=0.9)


class TestCorrectionFactor:
    def test_min_sum_overestimates_bp(self):
        """The sign-min output magnitude exceeds the BP magnitude (the bias alpha fixes)."""
        for mean in (1.0, 2.0, 4.0):
            assert min_sum_check_mean(mean, 32, samples=8000, rng=0) > bp_check_mean(
                mean, 32, samples=8000, rng=0
            )

    def test_optimized_alpha_is_above_one(self):
        result = optimize_alpha_density_evolution(check_degree=32, samples=4000, rng=0)
        assert result.alpha > 1.0
        assert result.scale < 1.0
        assert len(result.candidates) == len(result.mismatches)

    def test_optimal_alpha_beats_no_correction(self):
        result = optimize_alpha_density_evolution(check_degree=32, samples=4000, rng=0)
        index_of_one = result.candidates.index(1.0)
        assert result.mismatch < result.mismatches[index_of_one]

    def test_empirical_optimization_on_scaled_code(self, scaled_code):
        result = optimize_alpha_empirical(
            scaled_code, ebn0_db=4.0, frames=2, iterations=2,
            candidates=(1.0, 1.25, 1.5, 1.75), rng=0,
        )
        assert result.alpha > 1.0

    def test_empirical_mismatch_positive(self, scaled_code):
        assert empirical_mean_mismatch(scaled_code, 4.0, 1.25, frames=2, iterations=2) > 0


class TestQuantizationStudy:
    def test_sweep_structure(self, scaled_code):
        config = SimulationConfig(
            max_frames=20, target_frame_errors=20, batch_frames=10, all_zero_codeword=True
        )
        studies = quantization_sweep(
            scaled_code, 3.0, total_bits_values=(4, 6), iterations=8, config=config, rng=1
        )
        assert len(studies) == 3  # float reference + two widths
        assert studies[0].label == "float"
        assert studies[1].label.startswith("Q")
        assert all(s.point.frames > 0 for s in studies)
