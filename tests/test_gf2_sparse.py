"""Unit tests for repro.gf2.sparse."""

import numpy as np
import pytest

from repro.gf2.dense import gf2_matvec
from repro.gf2.sparse import SparseBinaryMatrix


class TestConstruction:
    def test_from_dense_roundtrip(self, rng):
        dense = rng.integers(0, 2, size=(6, 9), dtype=np.uint8)
        sparse = SparseBinaryMatrix.from_dense(dense)
        assert np.array_equal(sparse.to_dense(), dense)

    def test_duplicate_coordinates_rejected(self):
        with pytest.raises(ValueError):
            SparseBinaryMatrix((2, 2), [0, 0], [1, 1])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            SparseBinaryMatrix((2, 2), [2], [0])
        with pytest.raises(ValueError):
            SparseBinaryMatrix((2, 2), [0], [5])

    def test_rows_cols_length_mismatch(self):
        with pytest.raises(ValueError):
            SparseBinaryMatrix((2, 2), [0, 1], [0])

    def test_empty_matrix(self):
        sparse = SparseBinaryMatrix((3, 4), [], [])
        assert sparse.nnz == 0
        assert sparse.to_dense().sum() == 0

    def test_coordinates_sorted_by_row(self):
        sparse = SparseBinaryMatrix((3, 3), [2, 0, 1], [0, 2, 1])
        assert sparse.row_indices.tolist() == [0, 1, 2]


class TestProperties:
    def test_degrees(self):
        dense = np.array([[1, 1, 0], [1, 0, 0]], dtype=np.uint8)
        sparse = SparseBinaryMatrix.from_dense(dense)
        assert sparse.row_degrees().tolist() == [2, 1]
        assert sparse.col_degrees().tolist() == [2, 1, 0]

    def test_density(self):
        sparse = SparseBinaryMatrix((2, 5), [0], [0])
        assert sparse.density == pytest.approx(0.1)

    def test_equality(self, rng):
        dense = rng.integers(0, 2, size=(4, 4), dtype=np.uint8)
        a = SparseBinaryMatrix.from_dense(dense)
        b = SparseBinaryMatrix.from_dense(dense)
        assert a == b


class TestOperations:
    def test_matvec_matches_dense(self, rng):
        dense = rng.integers(0, 2, size=(7, 11), dtype=np.uint8)
        sparse = SparseBinaryMatrix.from_dense(dense)
        vec = rng.integers(0, 2, size=11, dtype=np.uint8)
        assert np.array_equal(sparse.matvec(vec), gf2_matvec(dense, vec))

    def test_matvec_batch(self, rng):
        dense = rng.integers(0, 2, size=(5, 8), dtype=np.uint8)
        sparse = SparseBinaryMatrix.from_dense(dense)
        batch = rng.integers(0, 2, size=(3, 8), dtype=np.uint8)
        out = sparse.matvec(batch)
        assert out.shape == (3, 5)
        for i in range(3):
            assert np.array_equal(out[i], gf2_matvec(dense, batch[i]))

    def test_matvec_wrong_length(self):
        sparse = SparseBinaryMatrix((2, 3), [0], [0])
        with pytest.raises(ValueError):
            sparse.matvec(np.zeros(4, dtype=np.uint8))

    def test_transpose(self, rng):
        dense = rng.integers(0, 2, size=(4, 6), dtype=np.uint8)
        sparse = SparseBinaryMatrix.from_dense(dense)
        assert np.array_equal(sparse.transpose().to_dense(), dense.T)
