"""Unit tests for repro.codes.qc."""

import numpy as np
import pytest

from repro.codes.qc import CirculantSpec, QCLDPCCode


@pytest.fixture
def small_spec():
    """A 2 x 3 array of 5 x 5 circulants."""
    return CirculantSpec(
        5,
        (
            ((0, 1), (2,), (0, 3)),
            ((1, 4), (0,), (2, 4)),
        ),
    )


class TestCirculantSpec:
    def test_shape_properties(self, small_spec):
        assert small_spec.row_blocks == 2
        assert small_spec.col_blocks == 3
        assert small_spec.num_checks == 10
        assert small_spec.block_length == 15

    def test_block_weights(self, small_spec):
        assert small_spec.block_weights().tolist() == [[2, 1, 2], [2, 1, 2]]
        assert small_spec.total_edges() == 10 * 5

    def test_positions_normalized(self):
        spec = CirculantSpec(5, (((7, 1),),))
        assert spec.block_positions[0][0] == (1, 2)

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            CirculantSpec(5, (((0,), (1,)), ((0,),)))

    def test_duplicate_positions_rejected(self):
        with pytest.raises(ValueError):
            CirculantSpec(5, (((0, 5),),))

    def test_row_and_column_weight(self, scaled_code):
        spec = scaled_code.spec
        assert spec.row_weight() == 32
        assert spec.column_weight() == 4

    def test_circulant_accessor(self, small_spec):
        assert small_spec.circulant(0, 1).positions == (2,)
        assert small_spec.circulant(1, 2).weight == 2


class TestQCLDPCCode:
    def test_expanded_shape(self, small_spec):
        code = QCLDPCCode(small_spec)
        pcm = code.parity_check_matrix()
        assert pcm.num_checks == 10
        assert pcm.block_length == 15
        assert pcm.num_edges == small_spec.total_edges()

    def test_expansion_matches_dense_circulants(self, small_spec):
        code = QCLDPCCode(small_spec)
        dense = code.parity_check_matrix().to_dense()
        b = small_spec.circulant_size
        for j in range(small_spec.row_blocks):
            for k in range(small_spec.col_blocks):
                block = dense[j * b : (j + 1) * b, k * b : (k + 1) * b]
                assert np.array_equal(block, small_spec.circulant(j, k).to_dense())

    def test_dimension_and_rate(self, scaled_code):
        assert scaled_code.dimension == scaled_code.block_length - scaled_code.parity_check_matrix().rank
        assert 0.85 < scaled_code.rate < 0.9

    def test_block_coordinates(self, scaled_code):
        b = scaled_code.circulant_size
        assert scaled_code.block_coordinates_of_bit(0) == (0, 0)
        assert scaled_code.block_coordinates_of_bit(b + 3) == (1, 3)
        assert scaled_code.block_coordinates_of_check(b - 1) == (0, b - 1)
        with pytest.raises(ValueError):
            scaled_code.block_coordinates_of_bit(scaled_code.block_length)
        with pytest.raises(ValueError):
            scaled_code.block_coordinates_of_check(-1)

    def test_pcm_cached(self, small_spec):
        code = QCLDPCCode(small_spec)
        assert code.parity_check_matrix() is code.parity_check_matrix()

    def test_codeword_membership(self, scaled_code, scaled_encoder, rng):
        info = rng.integers(0, 2, size=scaled_encoder.dimension, dtype=np.uint8)
        codeword = scaled_encoder.encode(info)
        assert scaled_code.is_codeword(codeword)
        corrupted = codeword.copy()
        corrupted[0] ^= 1
        assert not scaled_code.is_codeword(corrupted)
