"""Unit tests for the fabric work-lease brokers and shard-job plumbing.

The chaos battery (``test_fabric_chaos.py``) proves end-to-end bit-identity
under failure schedules; these tests pin the broker mechanics those
guarantees stand on: lease TTL/heartbeat semantics, idempotent completion,
bounded retry with backoff, dead-lettering, cancellation, straggler
re-queueing, the seed spawn-equivalence that lets a job travel as JSON,
and the filesystem backend's crash-recovery behaviours.
"""

import json

import numpy as np
import pytest

from repro.fabric import (
    FabricMismatchError,
    FilesystemBroker,
    InProcessBroker,
    LeasePolicy,
    ShardJob,
    result_from_dict,
    result_to_dict,
    seed_from_dict,
    seed_to_dict,
    shard_address,
)
from repro.sim.montecarlo import BatchResult


def make_job(index=0, key="exp", ebn0=3.0, size=10, seed=1234):
    parent = np.random.SeedSequence(seed)
    children = parent.spawn(index + 1)
    return ShardJob(
        key=key,
        ebn0_db=ebn0,
        shard_index=index,
        size=size,
        seed=seed_to_dict(children[index]),
    )


def broker_pair(tmp_path, policy):
    """Both backends under the same policy (parametrization helper)."""
    return {
        "inprocess": InProcessBroker(policy),
        "filesystem": FilesystemBroker.create(
            tmp_path / "broker", {"campaign": "t", "entries": {}}, policy=policy
        ),
    }


class TestShardJobSerialization:
    def test_seed_round_trip_is_spawn_equivalent(self):
        """A JSON-round-tripped child seed drives the exact same stream.

        This is the property that lets shard jobs travel to other hosts:
        numpy defines child ``i`` as ``SeedSequence(entropy, spawn_key=
        parent_key + (i,))``, so (entropy, spawn_key) reconstructs it.
        """
        parent = np.random.SeedSequence(20090427)
        for child in parent.spawn(5):
            rebuilt = seed_from_dict(json.loads(json.dumps(seed_to_dict(child))))
            a = np.random.default_rng(child).random(32)
            b = np.random.default_rng(rebuilt).random(32)
            assert np.array_equal(a, b)

    def test_result_round_trip(self):
        result = BatchResult(
            frames=10, bits=620, bit_errors=3, frame_errors=1,
            undetected_frame_errors=0, iterations=57, info_bits=310,
            info_bit_errors=2,
        )
        assert result_from_dict(json.loads(json.dumps(result_to_dict(result)))) == result

    def test_job_round_trip_and_address(self):
        job = make_job(index=3, key="nms a=1.25", ebn0=4.5)
        restored = ShardJob.from_dict(json.loads(json.dumps(job.as_dict())))
        assert restored == job
        assert restored.job_id == job.job_id == shard_address("nms a=1.25", 4.5, 3)
        # Addresses are filesystem-safe and ordered like shard indices.
        assert "/" not in job.job_id and " " not in job.job_id
        assert shard_address("e", 2.0, 2) < shard_address("e", 2.0, 10)

    def test_distinct_grid_values_never_collide(self):
        assert shard_address("e", 2.0, 0) != shard_address("e", 2.5, 0)
        assert shard_address("a", 2.0, 0) != shard_address("b", 2.0, 0)


@pytest.mark.parametrize("backend", ["inprocess", "filesystem"])
class TestBrokerContract:
    """Behaviours both backends must share, driven on a logical clock."""

    def make(self, tmp_path, backend, **policy_kwargs):
        policy = LeasePolicy(
            ttl=5.0, max_attempts=3, backoff_base=1.0, backoff_factor=2.0,
            **policy_kwargs,
        )
        return broker_pair(tmp_path, policy)[backend]

    def test_lease_complete_lifecycle(self, tmp_path, backend):
        broker = self.make(tmp_path, backend)
        job = make_job()
        assert broker.submit(job, now=0.0) == "queued"
        assert broker.submit(job, now=0.0) == "pending"  # dedup on address
        leased = broker.lease("w0", now=1.0)
        assert leased is not None and leased.job.job_id == job.job_id
        assert leased.attempt == 1
        assert broker.lease("w1", now=1.0) is None  # only one copy to grant
        assert broker.complete(job.job_id, {"result": {}, "frames": 1}, "w0")
        assert broker.submit(job, now=2.0) == "done"  # resume fast path
        assert broker.result(job.job_id) is not None
        assert broker.leases() == []

    def test_completion_is_first_wins_idempotent(self, tmp_path, backend):
        broker = self.make(tmp_path, backend)
        job = make_job()
        broker.submit(job, now=0.0)
        broker.lease("w0", now=0.0)
        assert broker.complete(job.job_id, {"winner": True}, "w0") is True
        assert broker.complete(job.job_id, {"winner": False}, "w1") is False
        record = broker.result(job.job_id)
        assert record["worker"] == "w0"  # the duplicate never overwrites

    def test_heartbeat_extends_and_expiry_requeues_with_backoff(
        self, tmp_path, backend
    ):
        broker = self.make(tmp_path, backend)
        job = make_job()
        broker.submit(job, now=0.0)
        broker.lease("w0", now=0.0)  # expires at 5
        assert broker.heartbeat(job.job_id, "w0", now=4.0)  # now expires at 9
        assert broker.reclaim(now=6.0) == []  # heartbeat kept it alive
        transitions = broker.reclaim(now=10.0)
        assert [t.outcome for t in transitions] == ["retried"]
        assert transitions[0].worker == "w0" and transitions[0].attempt == 1
        # Re-queued with backoff(1) = 1.0: not leasable until now >= 11.
        assert broker.lease("w1", now=10.5) is None
        leased = broker.lease("w1", now=11.0)
        assert leased is not None and leased.attempt == 2

    def test_heartbeat_rejects_stale_claimant(self, tmp_path, backend):
        broker = self.make(tmp_path, backend)
        job = make_job()
        broker.submit(job, now=0.0)
        broker.lease("w0", now=0.0)
        broker.reclaim(now=6.0)  # w0's lease expired
        broker.lease("w1", now=7.0)
        assert broker.heartbeat(job.job_id, "w0", now=7.5) is False
        assert broker.heartbeat(job.job_id, "w1", now=7.5) is True

    def test_dead_letter_after_max_attempts(self, tmp_path, backend):
        broker = self.make(tmp_path, backend)
        job = make_job()
        broker.submit(job, now=0.0)
        now = 0.0
        for attempt in (1, 2):
            assert broker.lease(f"w{attempt}", now=now).attempt == attempt
            now += 100.0  # well past the TTL
            assert [t.outcome for t in broker.reclaim(now=now)] == ["retried"]
            now += 100.0  # and past the backoff window
        assert broker.lease("w3", now=now).attempt == 3
        transitions = broker.reclaim(now=now + 200.0)
        assert [t.outcome for t in transitions] == ["dead"]
        assert broker.dead_attempts(job.job_id) == 3
        assert broker.lease("w4", now=now + 400.0) is None  # not re-queued

    def test_cancel_stops_retries(self, tmp_path, backend):
        broker = self.make(tmp_path, backend)
        job = make_job()
        broker.submit(job, now=0.0)
        broker.lease("w0", now=0.0)
        broker.cancel(job.job_id)
        assert broker.reclaim(now=10.0) == []  # expired but cancelled: dropped
        assert broker.lease("w1", now=20.0) is None

    def test_redispatch_duplicates_a_live_lease(self, tmp_path, backend):
        broker = self.make(tmp_path, backend)
        job = make_job()
        broker.submit(job, now=0.0)
        broker.lease("w0", now=0.0)
        assert broker.redispatch(job.job_id) is True
        assert broker.redispatch(job.job_id) is False  # copy already queued
        twin = broker.lease("w1", now=1.0)
        assert twin is not None and twin.job.job_id == job.job_id
        # Both executions complete; exactly one is first.
        firsts = [
            broker.complete(job.job_id, {"by": w}, w) for w in ("w1", "w0")
        ]
        assert firsts == [True, False]

    def test_queue_is_fifo_in_submission_order(self, tmp_path, backend):
        broker = self.make(tmp_path, backend)
        jobs = [make_job(index=i) for i in range(3)]
        for job in jobs:
            broker.submit(job, now=0.0)
        granted = [broker.lease("w0", now=0.0).job.shard_index for _ in jobs]
        assert granted == [0, 1, 2]

    def test_leases_view_is_sorted_and_complete(self, tmp_path, backend):
        broker = self.make(tmp_path, backend, straggler_after=2.0)
        for i in range(2):
            broker.submit(make_job(index=i), now=0.0)
        broker.lease("w1", now=0.0)
        broker.lease("w0", now=0.5)
        views = broker.leases()
        assert [v.job_id for v in views] == sorted(v.job_id for v in views)
        assert {v.worker for v in views} == {"w0", "w1"}
        assert all(v.expires_at == v.granted_at + 5.0 for v in views)


class TestFilesystemBrokerRecovery:
    """Backend-specific crash and multi-process behaviours."""

    MANIFEST = {"campaign": "t", "entries": {"e": {"note": 1}}}

    def test_reopen_requires_matching_fingerprint(self, tmp_path):
        root = tmp_path / "b"
        FilesystemBroker.create(root, self.MANIFEST)
        FilesystemBroker.create(root, self.MANIFEST)  # same spec: fine
        with pytest.raises(FabricMismatchError):
            FilesystemBroker.create(root, {"campaign": "other", "entries": {}})
        # fresh=True wipes state instead of refusing.
        broker = FilesystemBroker.create(
            root, {"campaign": "other", "entries": {}}, fresh=True
        )
        assert broker.manifest["campaign"] == "other"

    def test_fresh_discards_queue_and_results(self, tmp_path):
        root = tmp_path / "b"
        broker = FilesystemBroker.create(root, self.MANIFEST)
        job = make_job()
        broker.submit(job, now=0.0)
        done = make_job(index=1)
        broker.submit(done, now=0.0)
        broker.lease("w0", now=0.0)
        broker.complete(done.job_id, {"r": 1}, "w0")
        broker = FilesystemBroker.create(root, self.MANIFEST, fresh=True)
        assert broker.queued_count() == 0
        assert broker.result(done.job_id) is None

    def test_coordinator_restart_requeues_stale_leases(self, tmp_path):
        """A crashed coordinator's leases are recovered on re-create.

        The previous run's workers are gone with it; their leases re-queue
        immediately (preserving the attempt count) so the resumed run can
        lease them without waiting out the TTL.
        """
        root = tmp_path / "b"
        broker = FilesystemBroker.create(root, self.MANIFEST)
        job = make_job()
        broker.submit(job, now=0.0)
        assert broker.lease("w0", now=0.0) is not None
        # simulate SIGKILL: no complete, no reclaim; just re-create
        broker = FilesystemBroker.create(root, self.MANIFEST)
        leased = broker.lease("w-new", now=0.0)
        assert leased is not None and leased.job.job_id == job.job_id
        assert leased.attempt == 1

    def test_completion_records_survive_restart(self, tmp_path):
        root = tmp_path / "b"
        broker = FilesystemBroker.create(root, self.MANIFEST)
        job = make_job()
        broker.submit(job, now=0.0)
        broker.lease("w0", now=0.0)
        broker.complete(job.job_id, {"frames": 10}, "w0")
        broker = FilesystemBroker.create(root, self.MANIFEST)
        assert broker.submit(job, now=0.0) == "done"
        assert broker.result(job.job_id)["result"]["frames"] == 10

    def test_torn_lease_file_is_reclaimed_not_fatal(self, tmp_path):
        """A lease killed between rename and rewrite has no expires_at."""
        root = tmp_path / "b"
        broker = FilesystemBroker.create(root, self.MANIFEST)
        job = make_job()
        broker.submit(job, now=0.0)
        broker.lease("w0", now=0.0)
        lease_path = root / "leases" / f"{job.job_id}.json"
        record = json.loads(lease_path.read_text())
        del record["expires_at"]
        lease_path.write_text(json.dumps(record))
        transitions = broker.reclaim(now=0.0)  # treated as already expired
        assert [t.outcome for t in transitions] == ["retried"]

    def test_open_requires_manifest(self, tmp_path):
        from repro.fabric import FabricError

        with pytest.raises(FabricError):
            FilesystemBroker.open(tmp_path / "nowhere")

    def test_done_marker_round_trip(self, tmp_path):
        root = tmp_path / "b"
        broker = FilesystemBroker.create(root, self.MANIFEST)
        assert not broker.is_done()
        broker.mark_done()
        assert broker.is_done()
        # A resumed campaign clears the marker so workers keep serving.
        broker = FilesystemBroker.create(root, self.MANIFEST)
        assert not broker.is_done()


class TestLeasePolicy:
    def test_backoff_growth(self):
        policy = LeasePolicy(backoff_base=0.5, backoff_factor=2.0)
        assert [policy.backoff(a) for a in (1, 2, 3)] == [0.5, 1.0, 2.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            LeasePolicy(ttl=0.0)
        with pytest.raises(ValueError):
            LeasePolicy(max_attempts=0)
        with pytest.raises(ValueError):
            LeasePolicy(backoff_factor=0.5)

    def test_round_trip(self):
        policy = LeasePolicy(ttl=7.0, max_attempts=2, straggler_after=9.0)
        assert LeasePolicy.from_dict(policy.as_dict()) == policy
        assert LeasePolicy.from_dict({}) == LeasePolicy()
