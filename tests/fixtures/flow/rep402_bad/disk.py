"""Innocent-looking helper that performs a raw, interruptible write."""

import json
from pathlib import Path


def dump_json(path, payload):
    Path(path).write_text(json.dumps(payload, sort_keys=True))
