"""BAD: persistence scope launders its write through a raw helper."""

from disk import dump_json


def save_state(path, payload):
    dump_json(path, payload)
