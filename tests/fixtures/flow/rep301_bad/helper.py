"""Provenance-free entropy helper: the int it returns is not a seed tree."""


def make_entropy():
    return 1234
