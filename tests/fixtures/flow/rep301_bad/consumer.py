"""BAD: materializes a Generator from a value with no SeedSequence lineage."""

import numpy as np

from helper import make_entropy


def build_generator():
    return np.random.default_rng(make_entropy())
