"""GOOD: the full lifecycle — lease, heartbeat while working, complete."""


def drain(broker, worker, now):
    leased = broker.lease(worker, now=now)
    if leased is None:
        return None
    broker.heartbeat(leased.job_id, worker, now=now)
    payload = leased.run()
    broker.complete(leased.job_id, worker, payload)
    return payload
