"""Caller threads the campaign seed into the helper."""

from worker import add_noise


def run(frames, seed):
    return add_noise(frames, seed)
