"""GOOD: provenance is a parameter; the caller owns the spawn tree."""

import numpy as np


def add_noise(frames, seed):
    gen = np.random.default_rng(np.random.SeedSequence(seed))
    return gen.normal(size=frames)
