"""BAD twice: lease() drops `now`, heartbeat() reaches time.time()."""

from clockutil import read_clock


class ShardBroker:
    def __init__(self):
        self._jobs = []
        self._beats = {}
        self._done = {}

    def submit(self, job, *, now):
        self._jobs.append((job, now))

    def lease(self, worker):
        return self._jobs.pop()

    def heartbeat(self, job_id, worker, *, now):
        self._beats[job_id] = read_clock()

    def complete(self, job_id, worker, payload):
        self._done[job_id] = payload

    def reclaim(self, *, now):
        return [job for job, _ in self._jobs]
