"""Wall-clock helper — the thing broker code must never reach."""

import time


def read_clock():
    return time.time()
