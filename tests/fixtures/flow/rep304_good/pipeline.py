"""GOOD: provenance stays explicit in every signature."""

from factory import make_rng


def simulate(frames, rng=None, seed=0):
    rng = make_rng(seed) if rng is None else rng
    return rng.normal(size=frames)


def step(rng):
    return rng.normal()
