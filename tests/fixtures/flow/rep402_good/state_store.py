"""GOOD: every on-disk state transition goes through the atomic helper."""

import json

from filesafe import atomic_write_text


def save_state(path, payload):
    atomic_write_text(path, json.dumps(payload, sort_keys=True))
