"""The audited atomic-write helper (whitelisted, like repro.utils.files)."""

import os
import tempfile
from pathlib import Path


def atomic_write_text(path, text):
    target = Path(path)
    handle, staging = tempfile.mkstemp(dir=target.parent)
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as stream:
            stream.write(text)
        os.replace(staging, target)
    except BaseException:
        os.unlink(staging)
        raise
