"""GOOD: every dispatch carries its own spawned SeedSequence child."""

import numpy as np

from workers import simulate_shard


def run(pool, seed):
    root = np.random.SeedSequence(seed)
    handles = []
    for index in range(4):
        (child,) = root.spawn(1)
        handles.append(pool.apply_async(simulate_shard, (index, child)))
    return [handle.get() for handle in handles]
