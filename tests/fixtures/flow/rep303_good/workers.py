"""Shard worker: consumes the per-shard SeedSequence child it is handed."""


def simulate_shard(index, seed_seq):
    return index, seed_seq
