"""GOOD: every mutator moves on the injected `now`; no wall clock anywhere."""


class ShardBroker:
    def __init__(self):
        self._jobs = []
        self._beats = {}
        self._done = {}

    def submit(self, job, *, now):
        self._jobs.append((job, now))

    def lease(self, worker, *, now):
        job = self._jobs.pop()
        self._beats[worker] = now
        return job

    def heartbeat(self, job_id, worker, *, now):
        self._beats[job_id] = now

    def complete(self, job_id, worker, payload):
        self._done[job_id] = payload

    def reclaim(self, *, now):
        return [job for job, deadline in self._jobs if deadline <= now]
