"""Duration helper: monotonic deltas are permitted, wall time is not."""

import time


def elapsed_since(start):
    return time.perf_counter() - start
