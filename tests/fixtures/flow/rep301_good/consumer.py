"""GOOD: the Generator descends from the seed the caller provided."""

import numpy as np

from helper import shard_sequence


def build_generator(seed):
    return np.random.default_rng(shard_sequence(seed))
