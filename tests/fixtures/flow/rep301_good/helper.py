"""Seed helper that keeps provenance: callers hand in the seed."""

import numpy as np


def shard_sequence(seed):
    return np.random.SeedSequence(seed)
