"""BAD: conjures RNG provenance from a hardcoded literal SeedSequence."""

import numpy as np


def add_noise(frames):
    gen = np.random.default_rng(np.random.SeedSequence(1234))
    return gen.normal(size=frames)
