"""Caller of the conjuring helper (the evidence chain lands here)."""

from worker import add_noise


def run(frames):
    return add_noise(frames)
