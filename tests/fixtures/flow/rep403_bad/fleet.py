"""BAD: leases shard jobs and walks away — nothing ever completes."""


def drain(broker, worker, now):
    leased = broker.lease(worker, now=now)
    return leased
