"""BAD: heartbeats leases this module never acquired."""


def pulse(broker, job_id, worker, now):
    broker.heartbeat(job_id, worker, now=now)
