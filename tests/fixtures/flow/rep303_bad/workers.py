"""Shard worker: consumes the per-shard RNG it is handed."""


def simulate_shard(index, rng):
    return index, rng.normal()
