"""BAD: one Generator fans out to every shard dispatch in the loop."""

import numpy as np

from workers import simulate_shard


def run(pool, seed):
    rng = np.random.default_rng(seed)
    handles = []
    for index in range(4):
        handles.append(pool.apply_async(simulate_shard, (index, rng)))
    return [handle.get() for handle in handles]
