"""RNG factory: fine on its own — the seed is a parameter."""

import numpy as np


def make_rng(seed):
    return np.random.default_rng(seed)
