"""BAD twice: RNG state in a default argument, and captured by a closure."""

from factory import make_rng


def simulate(frames, rng=make_rng(0)):
    return rng.normal(size=frames)


def build_stepper(seed):
    rng = make_rng(seed)

    def step():
        return rng.normal()

    return step
