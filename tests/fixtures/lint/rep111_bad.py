"""Bad: per-frame Python loops inside the batched decoder kernel.

Linted under ``repro/decode/batched.py``; every loop that steps through
the batch one frame at a time defeats the vectorized hot path.
"""
import numpy as np


def decode_batch_one_by_one(decoder, llrs):
    results = []
    for frame in llrs:
        results.append(decoder.decode(frame))
    return results


def count_errors(llrs, codewords):
    total = 0
    for index in range(llrs.shape[0]):
        total += int((llrs[index] <= 0).sum())
    return total


def label_frames(frames):
    labels = []
    for frame_index, row in enumerate(frames):
        labels.append((frame_index, np.abs(row).min()))
    return labels
