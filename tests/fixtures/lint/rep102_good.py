"""Good: choices drawn through an explicit numpy Generator."""


def pick(rng, items):
    return items[int(rng.integers(0, len(items)))]
