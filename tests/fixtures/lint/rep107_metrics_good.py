"""Good: metrics snapshots go through the atomic write helper."""
import json

from repro.utils.files import atomic_write_text


def snapshot(path, counters):
    atomic_write_text(path, json.dumps(counters, sort_keys=True))


def export_csv(path, rows):
    atomic_write_text(path, "\n".join(rows))
