"""Good: event-log rewrites use the atomic helper; appends are audited.

An append-only journal's unit of atomicity is the flushed line, so the
one sanctioned `open(..., "a")` carries an explicit audited noqa — the
same pattern the real repro/obs/events.py uses.
"""
from repro.utils.files import atomic_write_text


def rewrite_log(path, lines):
    atomic_write_text(path, "\n".join(lines))


def append_record(path, line):
    handle = open(path, "a", encoding="utf-8")  # repro: noqa[REP107]
    try:
        handle.write(line + "\n")
        handle.flush()
    finally:
        handle.close()
