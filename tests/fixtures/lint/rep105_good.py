"""Good: sets are sorted before any order-sensitive consumption."""


def collect(labels):
    rows = [label.upper() for label in sorted({"a", "b", "c"})]
    for item in sorted(set(labels)):
        rows.append(item)
    return rows
