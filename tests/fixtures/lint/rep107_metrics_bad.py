"""Bad (linted as repro/obs/metrics.py): raw snapshot writes."""
import json
from pathlib import Path


def snapshot(path, counters):
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(counters, handle)


def export_csv(path, rows):
    Path(path).write_text("\n".join(rows))
