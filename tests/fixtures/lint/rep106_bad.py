"""Bad: exact equality against float literals."""


def classify(value, other):
    if value == 0.5:
        return "half"
    if 1.0 != other:
        return "not-one"
    return "other"
