"""Bad: iteration order over sets reaches results and output."""


def collect(labels):
    rows = [label.upper() for label in {"a", "b", "c"}]
    for item in set(labels):
        rows.append(item)
    return rows + list({"x", "y"})
