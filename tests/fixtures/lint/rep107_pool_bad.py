"""Bad (linted as repro/fabric/pool.py): raw checkpoint writes."""
from pathlib import Path


def checkpoint(path, payload):
    with open(path, "w") as handle:
        handle.write(payload)


def stamp_manifest(path, text):
    Path(path).write_text(text)
