"""Good: the batched kernel stays vectorized over the (batch, n) array.

Iteration- and layer-level loops are fine — they are O(iterations), not
O(frames) — and all per-frame arithmetic happens inside numpy.
"""
import numpy as np


def decode_batch_vectorized(llrs, max_iterations, layers):
    posterior = llrs.copy()
    for iteration in range(1, max_iterations + 1):
        for layer in layers:
            posterior += layer.update(posterior)
        if (posterior > 0).all():
            break
    return (posterior <= 0).astype(np.uint8)


def count_errors(llrs, codewords):
    return int(((llrs <= 0).astype(np.uint8) != codewords).sum())
