"""Good: pool targets are module-level (picklable under spawn)."""


def module_worker(item):
    return item * 2


def run(pool, items):
    return pool.map(module_worker, items)
