"""Bad: repro.obs code reading the time module instead of repro.obs.clock.

Linted under an ``repro/obs/`` path; every direct time-module clock call —
wall or monotonic — bypasses the audited chokepoint.
"""
import time
from time import monotonic


def shard_latency(started):
    return time.perf_counter() - started


def event_timestamps():
    return {"t_mono": monotonic(), "t_wall": time.time()}
