"""Bad: unpicklable pool targets (lambda and nested function)."""


def run(pool, items):
    def local_worker(item):
        return item * 2

    first = pool.map(local_worker, items)
    second = pool.map(lambda item: item + 1, items)
    return first, second
