"""Bad: wall-clock reads feeding values that end up in artifacts."""
import time
from datetime import datetime


def stamp_metadata(metadata):
    metadata["created"] = time.time()
    metadata["when"] = datetime.now().isoformat()
    return metadata
