"""Good: persistence goes through the atomic write-then-rename helper."""
from repro.utils.files import atomic_write_text


def persist(path, text):
    atomic_write_text(path, text)
