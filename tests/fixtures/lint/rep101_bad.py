"""Bad: legacy global numpy.random draws from hidden process state."""
import numpy as np


def sample_noise(n):
    state = np.random.RandomState(7)
    return np.random.normal(0.0, 1.0, size=n) + state.rand(n)
