"""Bad (when linted under a persistence path): non-atomic writes."""
from pathlib import Path


def persist(path, text):
    with open(path, "w") as handle:
        handle.write(text)
    Path(path).with_suffix(".copy").write_text(text)
