"""Bad: the stdlib random module (both import forms)."""
import random
from random import shuffle


def pick(items):
    shuffle(items)
    return random.choice(items)
