"""Bad: unseeded generator construction falls back to OS entropy."""
import numpy as np
from numpy.random import default_rng


def fresh_streams():
    a = default_rng()
    b = np.random.default_rng()
    root = np.random.SeedSequence()
    return a, b, root
