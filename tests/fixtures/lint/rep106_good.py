"""Good: tolerance-based comparison."""
import math


def classify(value):
    if math.isclose(value, 0.5):
        return "half"
    return "other"
