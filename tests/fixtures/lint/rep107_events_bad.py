"""Bad (linted as repro/obs/events.py): unsanctioned raw writes.

The real event log legitimately appends (with an audited noqa); this
fixture shows the spellings that must still be caught there — whole-file
truncating writes with no atomicity story at all.
"""
from pathlib import Path


def rewrite_log(path, lines):
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines))


def export_summary(path, text):
    Path(path).write_text(text)
