"""Good: every generator is derived from an explicit seed."""
import numpy as np
from numpy.random import default_rng


def seeded_streams(seed):
    a = default_rng(seed)
    root = np.random.SeedSequence(entropy=seed)
    return a, np.random.default_rng(root)
