"""Bad: ambient OS entropy outside the SeedSequence tree."""
import os
import uuid
from uuid import uuid4


def identifiers():
    token = os.urandom(16)
    run_id = uuid.uuid4()
    other = uuid4()
    return token, run_id, other
