"""Good: pool-side persistence rides the atomic rename helper."""
from repro.utils.files import atomic_write_text


def checkpoint(path, payload):
    atomic_write_text(path, payload)


def stamp_manifest(path, text):
    atomic_write_text(path, text)
