"""Good: explicit Generator passed in (no hidden global state)."""


def sample_noise(rng, n):
    return rng.normal(0.0, 1.0, size=n)
