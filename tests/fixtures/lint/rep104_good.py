"""Good: monotonic perf_counter for durations only (never stored state)."""
import time


def measure(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
