"""Good: identifiers derived from the experiment seed tree."""
import numpy as np


def identifiers(seed):
    child = np.random.SeedSequence(seed).spawn(1)[0]
    return "-".join(str(word) for word in child.generate_state(4))
