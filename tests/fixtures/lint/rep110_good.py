"""Good: repro.obs code timestamps through the audited clock chokepoint."""
from repro.obs import clock


def shard_latency(started):
    return clock.monotonic() - started


def event_timestamps():
    return {"t_mono": clock.monotonic(), "t_wall": clock.wall_time()}
