"""The registry schema cross-checker: built-ins pass, drift is caught.

The built-in registrations are checked for real (that is the CI gate), and
:func:`repro.registry.temporary_component` is used to register components
with *deliberately* mismatched schemas and confirm each REP2xx rule fires.
"""

from pathlib import Path

import pytest

from repro.devtools import (
    DEFAULT_DOCS_PATH,
    SchemaFinding,
    check_component,
    check_registry,
)
from repro.registry import Param, get_component, temporary_component

DOCS = Path(__file__).parents[1] / "docs" / "components.md"


def _rules(findings):
    return sorted(f.rule for f in findings)


# --------------------------------------------------------------------------- #
# The gate: every built-in registration is schema- and docs-clean
# --------------------------------------------------------------------------- #
def test_builtin_registry_is_clean():
    findings = check_registry(docs=DOCS)
    assert findings == [], "\n".join(f.render() for f in findings)


def test_default_docs_path_points_at_components_doc():
    assert DEFAULT_DOCS_PATH == Path("docs") / "components.md"
    assert DOCS.exists()


def test_missing_explicit_docs_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        check_registry(docs=tmp_path / "nope.md")


# --------------------------------------------------------------------------- #
# Deliberately mismatched schemas, one rule at a time
# --------------------------------------------------------------------------- #
def test_rep201_undeclared_schema_param():
    def builder(alpha: float = 0.5):
        return alpha

    params = [Param("alpha", float, default=0.5), Param("ghost", int, default=1)]
    with temporary_component("channel", "tmp-rep201", builder, params=params):
        findings = check_component(get_component("channel", "tmp-rep201"))
    assert _rules(findings) == ["REP201"]
    assert "ghost" in findings[0].message


def test_rep202_required_param_missing_from_schema():
    def builder(alpha, beta: float = 0.5):
        return alpha, beta

    with temporary_component(
        "channel", "tmp-rep202", builder, params=[Param("beta", float, default=0.5)]
    ):
        findings = check_component(get_component("channel", "tmp-rep202"))
    assert _rules(findings) == ["REP202"]
    assert "alpha" in findings[0].message


def test_rep202_required_param_declared_optional():
    def builder(alpha):
        return alpha

    with temporary_component(
        "channel", "tmp-rep202b", builder, params=[Param("alpha", float, default=0.5)]
    ):
        findings = check_component(get_component("channel", "tmp-rep202b"))
    # The phantom schema default also trips the default-agreement rule.
    assert _rules(findings) == ["REP202", "REP203"]
    assert any("optional" in f.message for f in findings)


def test_rep203_default_mismatch():
    def builder(alpha: float = 0.25):
        return alpha

    with temporary_component(
        "channel", "tmp-rep203", builder, params=[Param("alpha", float, default=0.5)]
    ):
        findings = check_component(get_component("channel", "tmp-rep203"))
    assert _rules(findings) == ["REP203"]


def test_rep204_default_outside_choices():
    def builder(mode: str = "fast"):
        return mode

    params = [Param("mode", str, default="fast", choices=("slow", "exact"))]
    with temporary_component("channel", "tmp-rep204", builder, params=params):
        findings = check_component(get_component("channel", "tmp-rep204"))
    assert "REP204" in _rules(findings)


def test_rep205_undocumented_component():
    def builder():
        return None

    with temporary_component("channel", "tmp-rep205", builder, params=[]):
        component = get_component("channel", "tmp-rep205")
        assert check_component(component, docs_text="no mention") and (
            check_component(component, docs_text="no mention")[0].rule == "REP205"
        )
        assert check_component(component, docs_text="tmp-rep205 docs") == []


# --------------------------------------------------------------------------- #
# Conventions: framework-owned params, open schemas, **kwargs builders
# --------------------------------------------------------------------------- #
def test_decoder_convention_skips_code_and_max_iterations():
    def builder(code, max_iterations=50, scale: float = 0.75):
        return code, max_iterations, scale

    with temporary_component(
        "decoder", "tmp-decoder", builder, params=[Param("scale", float, default=0.75)]
    ):
        assert check_component(get_component("decoder", "tmp-decoder")) == []


def test_open_schema_skips_signature_rules_but_not_docs():
    def builder(**params):
        return params

    with temporary_component("channel", "tmp-open", builder, params=None):
        component = get_component("channel", "tmp-open")
        assert check_component(component) == []
        assert _rules(check_component(component, docs_text="")) == ["REP205"]


def test_var_keyword_builder_accepts_any_declared_param():
    def builder(alpha: float = 0.5, **extra):
        return alpha, extra

    params = [Param("alpha", float, default=0.5), Param("beta", int, default=2)]
    with temporary_component("channel", "tmp-kwargs", builder, params=params):
        assert check_component(get_component("channel", "tmp-kwargs")) == []


def test_check_registry_with_explicit_components(tmp_path):
    def builder(alpha: float = 0.1):
        return alpha

    docs = tmp_path / "components.md"
    docs.write_text("tmp-explicit is documented here\n")
    with temporary_component(
        "channel",
        "tmp-explicit",
        builder,
        params=[Param("alpha", float, default=0.9)],
    ):
        findings = check_registry(
            [get_component("channel", "tmp-explicit")], docs=docs
        )
    assert _rules(findings) == ["REP203"]


def test_finding_render_mentions_component_and_rule():
    finding = SchemaFinding("REP203", "channel", "awgn", "defaults differ")
    rendered = finding.render()
    assert "REP203" in rendered and "channel" in rendered and "awgn" in rendered
