"""Unit tests for repro.channel.llr and repro.channel.quantize."""

import numpy as np
import pytest

from repro.channel.llr import channel_llrs, llr_scale_factor
from repro.channel.quantize import FixedPointFormat, UniformQuantizer
from repro.utils.bits import hard_decision


class TestLLR:
    def test_scale_factor(self):
        assert llr_scale_factor(1.0) == pytest.approx(2.0)
        assert llr_scale_factor(0.5, amplitude=2.0) == pytest.approx(16.0)

    def test_sign_convention(self):
        # A strongly positive received value means bit 0.
        llrs = channel_llrs(np.array([2.0, -2.0]), sigma=1.0)
        assert hard_decision(llrs).tolist() == [0, 1]

    def test_llr_magnitude_grows_with_snr(self):
        weak = channel_llrs(np.array([1.0]), sigma=2.0)
        strong = channel_llrs(np.array([1.0]), sigma=0.5)
        assert abs(strong[0]) > abs(weak[0])

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            channel_llrs(np.array([1.0]), sigma=0.0)


class TestFixedPointFormat:
    def test_q42_properties(self):
        fmt = FixedPointFormat(total_bits=6, fractional_bits=2)
        assert fmt.step == 0.25
        assert fmt.max_value == 7.75
        assert fmt.min_value == -8.0
        assert fmt.num_levels == 64
        assert str(fmt) == "Q4.2"

    def test_invalid_formats(self):
        with pytest.raises(ValueError):
            FixedPointFormat(total_bits=1, fractional_bits=0)
        with pytest.raises(ValueError):
            FixedPointFormat(total_bits=4, fractional_bits=4)
        with pytest.raises(ValueError):
            FixedPointFormat(total_bits=4, fractional_bits=-1)


class TestUniformQuantizer:
    def test_rounding_to_grid(self):
        quantizer = UniformQuantizer(FixedPointFormat(6, 2))
        assert quantizer.quantize(np.array([0.1, 0.13, 0.4])).tolist() == [0.0, 0.25, 0.5]

    def test_saturation_symmetric(self):
        quantizer = UniformQuantizer(FixedPointFormat(6, 2))
        out = quantizer.quantize(np.array([100.0, -100.0]))
        assert out.tolist() == [7.75, -7.75]

    def test_saturation_asymmetric(self):
        quantizer = UniformQuantizer(FixedPointFormat(6, 2), symmetric=False)
        assert quantizer.quantize(np.array([-100.0]))[0] == -8.0

    def test_idempotent(self, rng):
        quantizer = UniformQuantizer(FixedPointFormat(5, 1))
        values = rng.normal(0, 3, size=100)
        once = quantizer.quantize(values)
        assert np.array_equal(quantizer.quantize(once), once)

    def test_integer_roundtrip(self, rng):
        quantizer = UniformQuantizer(FixedPointFormat(6, 2))
        values = rng.normal(0, 2, size=50)
        codes = quantizer.to_integers(values)
        assert np.array_equal(quantizer.from_integers(codes), quantizer.quantize(values))

    def test_quantization_snr_improves_with_bits(self, rng):
        values = rng.normal(0, 2, size=2000)
        coarse = UniformQuantizer(FixedPointFormat(4, 1)).quantization_snr_db(values)
        fine = UniformQuantizer(FixedPointFormat(8, 4)).quantization_snr_db(values)
        assert fine > coarse

    def test_exact_values_have_infinite_snr(self):
        quantizer = UniformQuantizer(FixedPointFormat(6, 2))
        assert quantizer.quantization_snr_db(np.array([0.25, 0.5])) == float("inf")
