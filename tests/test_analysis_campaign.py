"""Tests for the campaign analysis layer (repro.analysis.campaign)."""

import json

import numpy as np
import pytest

from repro.analysis.campaign import (
    CampaignReport,
    Crossing,
    CurveSet,
    coding_gain_db,
    crossing_ebn0,
    curve_crossing,
    shannon_gap_db,
)
from repro.cli import main
from repro.sim import SimulationConfig
from repro.sim.campaign import (
    CampaignSpec,
    CodeSpec,
    DecoderSpec,
    ExperimentSpec,
    ResultStore,
)
from repro.sim.reference import (
    shannon_limit_ebn0_db,
    uncoded_bpsk_ber,
    uncoded_bpsk_ebn0_db,
    uncoded_bpsk_fer,
)
from repro.sim.results import SimulationCurve, SimulationPoint


def make_point(ebn0, ber, fer=None, frames=100):
    return SimulationPoint(
        ebn0_db=float(ebn0),
        ber=float(ber),
        fer=float(ber * 10 if fer is None else fer),
        bit_errors=int(ber * 1e6),
        frame_errors=min(frames, int((ber * 10 if fer is None else fer) * frames)),
        bits=10**6,
        frames=frames,
    )


def make_curve(label, points, metadata=None):
    curve = SimulationCurve(label=label, metadata=dict(metadata or {}))
    for ebn0, ber in points:
        curve.add(make_point(ebn0, ber))
    return curve


class TestCrossing:
    def test_basic_log_interpolation(self):
        crossing = crossing_ebn0([3.0, 4.0], [1e-2, 1e-4], 1e-3)
        assert crossing is not None and crossing.exact
        assert crossing.ebn0_db == pytest.approx(3.5)

    def test_grid_order_does_not_matter(self):
        a = crossing_ebn0([4.0, 3.0], [1e-4, 1e-2], 1e-3)
        b = crossing_ebn0([3.0, 4.0], [1e-2, 1e-4], 1e-3)
        assert a == b

    def test_non_monotone_curve_uses_first_downward_crossing(self):
        # Monte-Carlo noise bump: dips below the target, pops back up, then
        # falls for good.  The threshold is the first downward crossing.
        ebn0 = [1.0, 2.0, 3.0, 4.0]
        ber = [1e-2, 1e-4, 5e-3, 1e-6]
        crossing = crossing_ebn0(ebn0, ber, 1e-3)
        assert crossing is not None
        assert 1.0 < crossing.ebn0_db < 2.0

    def test_target_outside_measured_range(self):
        ebn0 = [3.0, 4.0]
        ber = [1e-2, 1e-3]
        # Curve never gets down to 1e-8, and never up to 0.5.
        assert crossing_ebn0(ebn0, ber, 1e-8) is None
        assert crossing_ebn0(ebn0, ber, 0.5) is None

    def test_single_point_curve_has_no_crossing(self):
        assert crossing_ebn0([3.0], [1e-6], 1e-3) is None
        assert crossing_ebn0([], [], 1e-3) is None

    def test_zero_error_point_bounds_the_crossing(self):
        # No errors observed at 5 dB: the crossing is at most 5 dB, inexact.
        crossing = crossing_ebn0([4.0, 5.0], [1e-2, 0.0], 1e-4)
        assert crossing == Crossing(5.0, exact=False)
        assert "<=" in f"{crossing:.2f}"

    def test_zero_error_point_never_starts_a_bracket(self):
        # A zero can close a bracket but carries no log-domain position, so
        # [0, 1e-2, 1e-6] must interpolate between the two positive points.
        crossing = crossing_ebn0([2.0, 3.0, 4.0], [0.0, 1e-2, 1e-6], 1e-4)
        assert crossing is not None and crossing.exact
        assert 3.0 < crossing.ebn0_db < 4.0

    def test_all_zero_curve_has_no_crossing(self):
        assert crossing_ebn0([3.0, 4.0], [0.0, 0.0], 1e-4) is None

    def test_exact_target_hit(self):
        crossing = crossing_ebn0([3.0, 4.0], [1e-3, 1e-3], 1e-3)
        assert crossing is not None
        assert crossing.ebn0_db == pytest.approx(3.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError, match="positive"):
            crossing_ebn0([3.0, 4.0], [1e-2, 1e-4], 0.0)
        with pytest.raises(ValueError, match="non-negative"):
            crossing_ebn0([3.0, 4.0], [1e-2, -1e-4], 1e-3)
        with pytest.raises(ValueError, match="equal length"):
            crossing_ebn0([3.0, 4.0], [1e-2], 1e-3)

    def test_curve_crossing_metrics(self):
        curve = SimulationCurve("c")
        curve.add(make_point(3.0, 1e-2, fer=1e-1))
        curve.add(make_point(4.0, 1e-4, fer=1e-3))
        ber = curve_crossing(curve, 1e-3)
        fer = curve_crossing(curve, 1e-2, metric="fer")
        assert 3.0 < ber.ebn0_db < 4.0
        assert 3.0 < fer.ebn0_db < 4.0
        with pytest.raises(ValueError, match="metric"):
            curve_crossing(curve, 1e-3, metric="per")

    def test_simulation_curve_delegates(self):
        curve = SimulationCurve("c")
        curve.add(make_point(3.0, 1e-2, fer=1e-1))
        curve.add(make_point(4.0, 1e-4, fer=1e-3))
        assert curve.ebn0_at_ber(1e-3) == pytest.approx(3.5)
        assert curve.ebn0_at_fer(1e-2) == pytest.approx(3.5)


class TestReferences:
    def test_uncoded_bpsk_inverse_round_trips(self):
        for target in (1e-2, 1e-4, 1e-6):
            ebn0 = uncoded_bpsk_ebn0_db(target)
            assert float(uncoded_bpsk_ber(ebn0)) == pytest.approx(target, rel=1e-6)

    def test_uncoded_bpsk_inverse_handles_high_targets(self):
        """Regression: targets near 0.5 used to hit the bracket floor."""
        ebn0 = uncoded_bpsk_ebn0_db(0.45)
        assert ebn0 == pytest.approx(-21.0, abs=0.1)
        assert float(uncoded_bpsk_ber(ebn0)) == pytest.approx(0.45, rel=1e-6)

    def test_uncoded_bpsk_inverse_rejects_bad_targets(self):
        with pytest.raises(ValueError):
            uncoded_bpsk_ebn0_db(0.0)
        with pytest.raises(ValueError):
            uncoded_bpsk_ebn0_db(0.6)
        with pytest.raises(ValueError, match="too close to 0.5"):
            uncoded_bpsk_ebn0_db(0.49999)

    def test_uncoded_bpsk_fer_matches_independence_model(self):
        # FER = 1 - (1 - BER)^n; spot-check against the direct formula where
        # it is numerically safe, and the n=1 degenerate case equals BER.
        ebn0 = 4.0
        ber = float(uncoded_bpsk_ber(ebn0))
        fer = float(uncoded_bpsk_fer(ebn0, 512))
        assert fer == pytest.approx(1.0 - (1.0 - ber) ** 512, rel=1e-12)
        assert float(uncoded_bpsk_fer(ebn0, 1)) == pytest.approx(ber, rel=1e-12)
        # Vectorized over the grid, monotone decreasing, and stable deep in
        # the waterfall (no catastrophic cancellation to 0).
        grid = uncoded_bpsk_fer([2.0, 6.0, 12.0], 4096)
        assert grid.shape == (3,)
        assert grid[0] > grid[1] > grid[2] > 0.0
        with pytest.raises(ValueError, match="frame_bits"):
            uncoded_bpsk_fer(4.0, 0)

    def test_coding_gain_and_shannon_gap(self):
        crossing = Crossing(4.0)
        gain = coding_gain_db(crossing, 1e-4)
        assert gain == pytest.approx(uncoded_bpsk_ebn0_db(1e-4) - 4.0)
        gap = shannon_gap_db(crossing, 0.875)
        assert gap == pytest.approx(4.0 - shannon_limit_ebn0_db(0.875))
        assert coding_gain_db(None, 1e-4) is None
        assert shannon_gap_db(None, 0.875) is None
        # Bare floats are accepted too.
        assert coding_gain_db(4.0, 1e-4) == pytest.approx(gain)


def fabricated_store(tmp_path, name="fab"):
    """A campaign store with analytically fabricated (instant) results."""
    code = CodeSpec(family="scaled", circulant=31)
    config = SimulationConfig(max_frames=100, target_frame_errors=50,
                              batch_frames=10, all_zero_codeword=True)
    spec = CampaignSpec(
        name=name,
        seed=11,
        ebn0=(3.0, 4.0, 5.0),
        config=config,
        experiments=[
            ExperimentSpec("nms-a1.25", code,
                           DecoderSpec("nms", 18, params={"alpha": 1.25})),
            ExperimentSpec("nms-a1.5", code,
                           DecoderSpec("nms", 18, params={"alpha": 1.5})),
            ExperimentSpec("min-sum", code, DecoderSpec("min-sum", 18)),
        ],
    )
    store = ResultStore.create(tmp_path / name, spec)
    # Shifted exponential waterfalls: min-sum worst, alpha=1.25 best.
    shifts = {"nms-a1.25": 0.0, "nms-a1.5": 0.2, "min-sum": 0.6}
    for label, shift in shifts.items():
        for ebn0 in spec.ebn0:
            ber = 10 ** (-1.0 - 1.5 * (ebn0 - shift - 3.0))
            store.record_point(label, make_point(ebn0, min(ber, 0.5)))
    return store


class TestCurveSet:
    def test_from_store_and_field_access(self, tmp_path):
        store = fabricated_store(tmp_path)
        curves = CurveSet.from_store(store)
        assert len(curves) == 3
        assert not curves.problems
        record = curves.get("nms-a1.25")
        assert record.code_key == "scaled31"
        assert record.decoder_key == "nms-it18-alpha1.25"
        assert record.field("decoder.params.alpha") == 1.25
        assert record.field("config.max_frames") == 100
        assert record.field("seed") == 11
        assert record.field("label") == "nms-a1.25"
        assert record.field("decoder.params.beta", "missing") == "missing"

    def test_from_store_accepts_a_directory_path(self, tmp_path):
        store = fabricated_store(tmp_path)
        curves = CurveSet.from_store(store.directory)
        assert sorted(curves.labels) == ["min-sum", "nms-a1.25", "nms-a1.5"]

    def test_filter_by_dotted_and_dunder_fields(self, tmp_path):
        curves = CurveSet.from_store(fabricated_store(tmp_path))
        nms = curves.filter(decoder__kind="nms")
        assert sorted(nms.labels) == ["nms-a1.25", "nms-a1.5"]
        sharp = curves.filter(**{"decoder.params.alpha": 1.25})
        assert sharp.labels == ["nms-a1.25"]
        none = curves.filter(decoder__kind="nms", **{"decoder.params.alpha": 9.9})
        assert len(none) == 0

    def test_filter_by_predicate(self, tmp_path):
        curves = CurveSet.from_store(fabricated_store(tmp_path))
        deep = curves.filter(lambda r: min(p.ber for p in r.curve.points) < 5e-4)
        assert "min-sum" not in deep.labels
        assert sorted(deep.labels) == ["nms-a1.25", "nms-a1.5"]

    def test_group_by_and_sorted_by(self, tmp_path):
        curves = CurveSet.from_store(fabricated_store(tmp_path))
        by_kind = curves.group_by("decoder.kind")
        assert [key for key, _ in by_kind.items()] == [("min-sum",), ("nms",)]
        assert len(by_kind[("nms",)]) == 2
        by_alpha = curves.filter(decoder__kind="nms").sorted_by(
            "decoder.params.alpha", reverse=True
        )
        assert by_alpha.labels == ["nms-a1.5", "nms-a1.25"]

    def test_from_store_collects_problems(self, tmp_path):
        store = fabricated_store(tmp_path)
        path = store.curve_path("min-sum")
        data = json.loads(path.read_text())
        data["metadata"]["seed"] = 999  # addressing mismatch
        path.write_text(json.dumps(data))
        curves = CurveSet.from_store(store.directory)
        assert sorted(curves.labels) == ["nms-a1.25", "nms-a1.5"]
        assert list(curves.problems) == ["min-sum"]
        assert "different campaign spec" in curves.problems["min-sum"]
        # Regression: filtered/sliced/sorted views keep reporting the
        # experiments that could not be read.
        assert curves.filter(decoder__kind="nms").problems == curves.problems
        assert curves[:1].problems == curves.problems
        assert curves.sorted_by("label").problems == curves.problems
        for group in curves.group_by("decoder.kind").values():
            assert group.problems == curves.problems

    def test_from_curves(self):
        curves = CurveSet.from_curves({"a": make_curve("a", [(3.0, 1e-3)])})
        assert curves.labels == ["a"]
        assert curves.get("a").code_key is None
        with pytest.raises(KeyError):
            curves.get("b")


class TestCampaignReport:
    def test_report_is_deterministic(self, tmp_path):
        store = fabricated_store(tmp_path)
        first = CampaignReport.from_store(store, target_ber=1e-3)
        second = CampaignReport.from_store(
            ResultStore.open(store.directory), target_ber=1e-3
        )
        assert first.to_markdown() == second.to_markdown()
        assert first.to_text() == second.to_text()
        assert first.to_csv() == second.to_csv()
        assert first.as_dict() == second.as_dict()

    def test_crossings_and_ranking(self, tmp_path):
        report = CampaignReport.from_store(fabricated_store(tmp_path), target_ber=1e-3)
        by_label = {e.label: e for e in report.experiments}
        # Labels are sorted deterministically.
        assert [e.label for e in report.experiments] == sorted(by_label)
        # The fabricated shifts order the crossings.
        a125 = by_label["nms-a1.25"].ber_crossing.ebn0_db
        a15 = by_label["nms-a1.5"].ber_crossing.ebn0_db
        ms = by_label["min-sum"].ber_crossing.ebn0_db
        assert a125 < a15 < ms
        assert a15 - a125 == pytest.approx(0.2, abs=1e-6)
        # Coding gain positive (better than uncoded), Shannon gap positive.
        assert by_label["nms-a1.25"].coding_gain_db > 0
        assert by_label["nms-a1.25"].shannon_gap_db > 0
        assert by_label["nms-a1.25"].rate == pytest.approx(0.879, abs=1e-3)

    def test_markdown_contains_required_tables(self, tmp_path):
        report = CampaignReport.from_store(fabricated_store(tmp_path), target_ber=1e-3)
        text = report.to_markdown()
        assert "### Threshold crossings" in text
        assert "Coding gain vs uncoded (dB)" in text
        assert "### Comparison @ BER 1.0e-03 — code scaled31" in text
        assert "vs best (dB)" in text
        assert "+0.000" in text  # best-of-group delta
        assert "### Measured waterfall points" in text

    def test_fer_target_adds_column(self, tmp_path):
        report = CampaignReport.from_store(
            fabricated_store(tmp_path), target_ber=1e-3, target_fer=1e-2
        )
        assert "Eb/N0 @ FER 1.0e-02 (dB)" in report.to_text()
        assert all(e.fer_crossing is not None for e in report.experiments)

    def test_include_rates_false_skips_code_builds(self, tmp_path):
        report = CampaignReport.from_store(
            fabricated_store(tmp_path), target_ber=1e-3, include_rates=False
        )
        assert all(e.rate is None for e in report.experiments)
        assert all(e.shannon_gap_db is None for e in report.experiments)

    def test_json_round_trips(self, tmp_path):
        report = CampaignReport.from_store(fabricated_store(tmp_path), target_ber=1e-3)
        data = json.loads(report.to_json())
        assert data["campaign"] == "fab"
        assert data["target_ber"] == 1e-3
        assert len(data["experiments"]) == 3
        assert len(data["waterfall"]["min-sum"]) == 3
        crossing = data["experiments"][0]["ber_crossing"]
        assert set(crossing) == {"ebn0_db", "exact"}

    def test_problem_experiments_are_reported_not_fatal(self, tmp_path):
        store = fabricated_store(tmp_path)
        store.curve_path("min-sum").write_text("{broken json")
        report = CampaignReport.from_store(store.directory, target_ber=1e-3)
        assert list(report.problems) == ["min-sum"]
        assert "unreadable" in report.to_text()
        assert len(report.experiments) == 2

    def test_render_rejects_unknown_format(self, tmp_path):
        report = CampaignReport.from_store(fabricated_store(tmp_path))
        with pytest.raises(ValueError, match="format"):
            report.render("pdf")

    def test_invalid_targets_rejected(self, tmp_path):
        store = fabricated_store(tmp_path)
        with pytest.raises(ValueError):
            CampaignReport.from_store(store, target_ber=0.0)
        with pytest.raises(ValueError):
            CampaignReport.from_store(store, target_fer=-1.0)


class TestReportCLI:
    def test_report_on_fabricated_store(self, tmp_path, capsys):
        store = fabricated_store(tmp_path)
        assert main([
            "campaign", "report", str(store.directory),
            "--format", "markdown", "--target-ber", "1e-3",
        ]) == 0
        out = capsys.readouterr().out
        assert "Threshold crossings" in out
        assert "Coding gain vs uncoded (dB)" in out
        assert "vs best (dB)" in out

    def test_report_to_output_file(self, tmp_path, capsys):
        store = fabricated_store(tmp_path)
        target = tmp_path / "report.md"
        assert main([
            "campaign", "report", str(store.directory),
            "--format", "markdown", "--target-ber", "1e-3",
            "--output", str(target),
        ]) == 0
        assert "report written to" in capsys.readouterr().out
        assert "Threshold crossings" in target.read_text()

    def test_report_no_rate_skips_gap_column_values(self, tmp_path, capsys):
        store = fabricated_store(tmp_path)
        assert main([
            "campaign", "report", str(store.directory),
            "--target-ber", "1e-3", "--no-rate",
        ]) == 0
        out = capsys.readouterr().out
        # Rate column present but not computed: every value is n/a.
        assert "0.879" not in out
        assert "n/a" in out

    def test_report_warns_about_corrupt_experiments(self, tmp_path, capsys):
        store = fabricated_store(tmp_path)
        store.curve_path("min-sum").write_text("{broken json")
        assert main([
            "campaign", "report", str(store.directory), "--target-ber", "1e-3",
        ]) == 0
        captured = capsys.readouterr()
        assert "unreadable" in captured.err
        assert "min-sum" in captured.err

    def test_report_on_missing_directory_exits_2(self, tmp_path, capsys):
        assert main(["campaign", "report", str(tmp_path / "nope")]) == 2
        assert "cannot open" in capsys.readouterr().err
