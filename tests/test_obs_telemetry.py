"""Tests for campaign telemetry (repro.obs).

The headline contract tested here: telemetry is **write-only**.  A
campaign run with the event log, metrics and stage profiling all on must
persist byte-identical curve files to a run with telemetry off — serial
or pooled.  Everything else (schema validation, seq continuation across
interrupted runs, trace rendering, the status surfaces) protects the
observability layer itself.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.obs import clock
from repro.obs.events import (
    EVENT_FIELDS,
    EventLog,
    EventSchemaError,
    events_of_type,
    read_events,
    validate_event,
    validate_event_log,
)
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.probe import STAGES, StageAccumulator
from repro.obs.telemetry import ENV_VAR, Telemetry, telemetry_enabled
from repro.obs.trace import live_rates, split_runs, trace_summary
from repro.sim import MonteCarloSimulator, SimulationConfig
from repro.sim.campaign import (
    CampaignScheduler,
    CampaignSpec,
    CodeSpec,
    DecoderSpec,
    ExperimentSpec,
    ResultStore,
)

TINY_CONFIG = SimulationConfig(
    max_frames=40, target_frame_errors=6, batch_frames=10, all_zero_codeword=True
)


def tiny_spec(name="telemetry-campaign", seed=7, ebn0=(2.0, 4.0)) -> CampaignSpec:
    """Two decoder configurations on the scaled code — fast but non-trivial."""
    code = CodeSpec(family="scaled", circulant=31)
    return CampaignSpec(
        name=name,
        seed=seed,
        ebn0=tuple(ebn0),
        config=TINY_CONFIG,
        experiments=[
            ExperimentSpec(label="nms", code=code, decoder=DecoderSpec("nms", 8)),
            ExperimentSpec(
                label="min-sum", code=code, decoder=DecoderSpec("min-sum", 8)
            ),
        ],
    )


def run_campaign(directory, *, workers=None, telemetry=False, spec=None):
    spec = spec or tiny_spec()
    store = ResultStore.create(directory, spec)
    curves = CampaignScheduler(
        spec, store, workers=workers, telemetry=telemetry
    ).run()
    return store, curves


def curve_bytes(store):
    return {
        e.label: store.curve_path(e.label).read_bytes()
        for e in store.spec.experiments
    }


# --------------------------------------------------------------------- #
# Headline: telemetry is write-only
# --------------------------------------------------------------------- #
class TestByteIdentity:
    def test_serial_curves_identical_with_telemetry_on_and_off(self, tmp_path):
        off, _ = run_campaign(tmp_path / "off", telemetry=False)
        on, _ = run_campaign(tmp_path / "on", telemetry=True)
        assert curve_bytes(on) == curve_bytes(off)
        assert (tmp_path / "on" / "telemetry" / "events.jsonl").exists()
        assert (tmp_path / "on" / "telemetry" / "metrics.json").exists()
        assert not (tmp_path / "off" / "telemetry").exists()

    def test_pooled_telemetry_curves_identical_to_serial_plain(self, tmp_path):
        off, _ = run_campaign(tmp_path / "off", telemetry=False)
        on, _ = run_campaign(tmp_path / "on", workers=2, telemetry=True)
        assert curve_bytes(on) == curve_bytes(off)

    def test_fresh_store_discards_stale_telemetry(self, tmp_path):
        spec = tiny_spec()
        store, _ = run_campaign(tmp_path / "c", telemetry=True)
        assert (tmp_path / "c" / "telemetry" / "events.jsonl").exists()
        ResultStore.create(tmp_path / "c", spec, fresh=True)
        assert not (tmp_path / "c" / "telemetry" / "events.jsonl").exists()
        assert not (tmp_path / "c" / "telemetry" / "metrics.json").exists()


# --------------------------------------------------------------------- #
# Event log schema
# --------------------------------------------------------------------- #
class TestEventLog:
    def test_campaign_run_emits_schema_valid_events(self, tmp_path):
        store, _ = run_campaign(tmp_path / "c", telemetry=True)
        path = tmp_path / "c" / "telemetry" / "events.jsonl"
        count = validate_event_log(path)  # raises on any invalid record
        records = read_events(path)
        assert count == len(records) > 0
        types = {r["event"] for r in records}
        assert {"campaign_start", "job_dispatched", "point_recorded",
                "campaign_end"} <= types
        # serial runs still report per-shard telemetry and the worker pair
        assert {"shard_completed", "worker_up", "worker_down"} <= types

    def test_every_emitted_event_type_is_in_the_schema(self, tmp_path):
        store, _ = run_campaign(tmp_path / "c", workers=2, telemetry=True)
        for record in read_events(tmp_path / "c" / "telemetry" / "events.jsonl"):
            assert record["event"] in EVENT_FIELDS
            validate_event(record)

    def test_point_recorded_matches_persisted_curves(self, tmp_path):
        store, curves = run_campaign(tmp_path / "c", telemetry=True)
        records = read_events(tmp_path / "c" / "telemetry" / "events.jsonl")
        recorded = {
            (r["experiment"], r["ebn0_db"]): r
            for r in events_of_type(records, "point_recorded")
        }
        for label, curve in curves.items():
            for point in curve.points:
                event = recorded[(label, point.ebn0_db)]
                assert event["frames"] == point.frames
                assert event["frame_errors"] == point.frame_errors

    def test_seq_is_strictly_increasing(self, tmp_path):
        store, _ = run_campaign(tmp_path / "c", telemetry=True)
        seqs = [r["seq"] for r in
                read_events(tmp_path / "c" / "telemetry" / "events.jsonl")]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

    def test_unknown_event_type_rejected(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        with pytest.raises(EventSchemaError):
            log.emit("no_such_event", campaign="x")

    def test_missing_required_field_rejected(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        with pytest.raises(EventSchemaError):
            log.emit("resume_skip", experiment="a", point_index=0)  # no ebn0_db

    def test_torn_final_line_is_tolerated(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        log.emit("worker_up", worker=1)
        log.emit("worker_down", worker=1)
        log.close()
        path = tmp_path / "events.jsonl"
        with path.open("a") as handle:
            handle.write('{"v": 1, "seq": 3, "t_mono"')  # torn mid-record
        records = read_events(path)
        assert [r["event"] for r in records] == ["worker_up", "worker_down"]

    def test_seq_continues_after_reopen(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.emit("worker_up", worker=1)
        log.close()
        log = EventLog(path)
        log.emit("worker_down", worker=1)
        log.close()
        assert [r["seq"] for r in read_events(path)] == [0, 1]


# --------------------------------------------------------------------- #
# Interrupted runs: the log survives a kill and resume skips what's done
# --------------------------------------------------------------------- #
class TestKillAndResume:
    def test_killed_run_leaves_valid_log_without_campaign_end(
        self, tmp_path, monkeypatch
    ):
        spec = tiny_spec()
        store = ResultStore.create(tmp_path / "c", spec)
        original = ResultStore.record_point
        recorded = []

        def dying_record_point(self, label, point):
            if recorded:
                raise RuntimeError("simulated kill")
            recorded.append(label)
            return original(self, label, point)

        monkeypatch.setattr(ResultStore, "record_point", dying_record_point)
        with pytest.raises(RuntimeError, match="simulated kill"):
            CampaignScheduler(spec, store, telemetry=True).run()
        monkeypatch.setattr(ResultStore, "record_point", original)

        path = tmp_path / "c" / "telemetry" / "events.jsonl"
        validate_event_log(path)  # the log survived the kill intact
        records = read_events(path)
        assert len(events_of_type(records, "campaign_start")) == 1
        assert events_of_type(records, "campaign_end") == []  # interrupted

        # Resume: one point is already persisted; the new run must skip
        # exactly it, finish the rest, and close with campaign_end.
        store = ResultStore.open(tmp_path / "c")
        curves = CampaignScheduler(spec, store, telemetry=True).run()
        assert all(len(curve.points) == 2 for curve in curves.values())
        records = read_events(path)
        validate_event_log(path)
        assert len(events_of_type(records, "campaign_start")) == 2
        assert len(events_of_type(records, "campaign_end")) == 1
        skips = events_of_type(records, "resume_skip")
        assert len(skips) == 1
        completed = {
            (r["experiment"], r["ebn0_db"])
            for r in events_of_type(records, "point_recorded")
        }
        for skip in skips:  # every skip references a point recorded earlier
            assert (skip["experiment"], skip["ebn0_db"]) in completed
        seqs = [r["seq"] for r in records]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

    def test_resume_of_complete_campaign_skips_every_point(self, tmp_path):
        spec = tiny_spec()
        store, _ = run_campaign(tmp_path / "c", telemetry=True, spec=spec)
        store = ResultStore.open(tmp_path / "c")
        CampaignScheduler(spec, store, telemetry=True).run()
        records = read_events(tmp_path / "c" / "telemetry" / "events.jsonl")
        runs = split_runs(records)
        assert len(runs) == 2
        assert len(events_of_type(runs[1], "resume_skip")) == 4  # 2 exp x 2 points
        assert events_of_type(runs[1], "job_dispatched") == []


# --------------------------------------------------------------------- #
# Metrics registry
# --------------------------------------------------------------------- #
class TestMetrics:
    def test_histogram_buckets_and_overflow(self):
        histogram = Histogram(bounds=(1.0, 2.0))
        for value in (0.5, 1.5, 99.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert [b["count"] for b in snap["buckets"]] == [1, 1, 1]
        assert snap["buckets"][-1]["le"] == "inf"
        assert snap["count"] == 3 and snap["min"] == 0.5 and snap["max"] == 99.0

    def test_snapshot_round_trips_through_save_load(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("frames_total", 100)
        registry.set_gauge("workers", 4)
        registry.observe("shard_seconds", 0.2)
        path = tmp_path / "metrics.json"
        registry.save(path)
        assert MetricsRegistry.load(path) == registry.snapshot()

    def test_load_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "metrics.json"
        path.write_text('{"schema_version": 999}')
        with pytest.raises(ValueError, match="schema version"):
            MetricsRegistry.load(path)
        path.write_text('{"not": "a snapshot"}')
        with pytest.raises(ValueError):
            MetricsRegistry.load(path)

    def test_campaign_metrics_snapshot_accounts_for_every_frame(self, tmp_path):
        store, curves = run_campaign(tmp_path / "c", telemetry=True)
        data = MetricsRegistry.load(tmp_path / "c" / "telemetry" / "metrics.json")
        counters = data["counters"]
        frames = sum(p.frames for c in curves.values() for p in c.points)
        assert counters["frames_total"] == frames
        assert counters["points_recorded_total"] == 4
        per_experiment = sum(
            value for name, value in counters.items()
            if name.startswith("frames_total.experiment.")
        )
        assert per_experiment == frames
        assert set(data["gauges"]) >= {
            "run_seconds", "run_started_wall", "run_ended_wall", "workers"
        }
        stage_total = sum(
            value for name, value in counters.items()
            if name.startswith("stage_seconds.")
        )
        assert stage_total > 0  # the probe actually ran


# --------------------------------------------------------------------- #
# Stage probe
# --------------------------------------------------------------------- #
class TestProbe:
    def test_accumulator_checkpoint_delta(self):
        accumulator = StageAccumulator()
        accumulator.record_batch(10, {"decode": 1.0, "encode": 0.5})
        mark = accumulator.checkpoint()
        accumulator.record_batch(20, {"decode": 2.0})
        batches, frames, delta = accumulator.since(mark)
        assert (batches, frames) == (1, 20)
        assert delta["decode"] == 2.0 and delta["encode"] == 0.0

    def test_probed_simulator_counts_identical(self, scaled_code):
        decoder = DecoderSpec("nms", 8).build(scaled_code)
        plain = MonteCarloSimulator(
            scaled_code, decoder, config=TINY_CONFIG, rng=0
        )
        accumulator = StageAccumulator()
        probed = MonteCarloSimulator(
            scaled_code, decoder, config=TINY_CONFIG, rng=0, probe=accumulator
        )
        point_a = plain.run_point(3.0, rng=np.random.SeedSequence(5))
        point_b = probed.run_point(3.0, rng=np.random.SeedSequence(5))
        assert point_a == point_b
        assert accumulator.frames == point_b.frames
        assert set(accumulator.stage_seconds) == set(STAGES)


# --------------------------------------------------------------------- #
# Enablement and the clock chokepoint
# --------------------------------------------------------------------- #
class TestEnablement:
    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("true", True), ("YES", True), (" on ", True),
        ("0", False), ("", False), ("off", False), (None, False),
    ])
    def test_telemetry_enabled_parsing(self, value, expected, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        if value is None:
            assert telemetry_enabled() is expected
        else:
            assert telemetry_enabled(value) is expected

    def test_environment_variable_switches_scheduler_telemetry(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(ENV_VAR, "1")
        store, _ = run_campaign(tmp_path / "c", telemetry=None)
        assert (tmp_path / "c" / "telemetry" / "events.jsonl").exists()

    def test_if_enabled_override_beats_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "1")
        assert Telemetry.if_enabled(tmp_path, enabled=False) is None
        monkeypatch.delenv(ENV_VAR)
        assert isinstance(Telemetry.if_enabled(tmp_path, enabled=True), Telemetry)

    def test_wall_iso_is_a_pure_formatter(self):
        assert clock.wall_iso(0.0) == "1970-01-01T00:00:00Z"


# --------------------------------------------------------------------- #
# Trace and live rates
# --------------------------------------------------------------------- #
class TestTrace:
    def test_trace_summary_renders_all_sections(self, tmp_path):
        run_campaign(tmp_path / "c", workers=2, telemetry=True)
        text = trace_summary(tmp_path / "c")
        for fragment in ("schema-valid events", "stage breakdown",
                         "Slowest shards", "utilization timeline",
                         "early stopping"):
            assert fragment in text, fragment

    def test_trace_summary_without_telemetry_raises(self, tmp_path):
        run_campaign(tmp_path / "c", telemetry=False)
        with pytest.raises(FileNotFoundError, match="REPRO_TELEMETRY"):
            trace_summary(tmp_path / "c")

    def test_live_rates_from_synthetic_records(self):
        records = [
            {"event": "campaign_start", "t_mono": 10.0, "seq": 1},
            {"event": "point_recorded", "t_mono": 12.0, "seq": 2, "frames": 300},
            {"event": "point_recorded", "t_mono": 14.0, "seq": 3, "frames": 100},
        ]
        rates = live_rates(records)
        assert rates["frames"] == 400 and rates["points"] == 2
        assert rates["elapsed_seconds"] == pytest.approx(4.0)
        assert rates["frames_per_second"] == pytest.approx(100.0)
        assert not rates["completed"]

    def test_split_runs_segments_at_campaign_start(self):
        records = [
            {"event": "campaign_start"}, {"event": "worker_up"},
            {"event": "campaign_start"}, {"event": "campaign_end"},
        ]
        runs = split_runs(records)
        assert [len(run) for run in runs] == [2, 2]


# --------------------------------------------------------------------- #
# CLI surfaces: status on corrupt stores, watch, trace
# --------------------------------------------------------------------- #
class TestCliSurfaces:
    def test_status_reports_aggregate_total_over_corrupt_store(
        self, tmp_path, capsys
    ):
        store, _ = run_campaign(tmp_path / "c", telemetry=False)
        store.curve_path("nms").write_text("{ not json")
        code = main(["campaign", "status", str(tmp_path / "c")])
        out = capsys.readouterr().out
        assert code == 1  # incomplete, but it did not die
        assert "TOTAL" in out
        assert "not a readable curve file" in out
        lines = [l for l in out.splitlines() if l.startswith("TOTAL")]
        assert lines and "2/4" in lines[0]  # min-sum's points still counted

    def test_status_reports_unreadable_event_log(self, tmp_path, capsys):
        run_campaign(tmp_path / "c", telemetry=True)
        (tmp_path / "c" / "telemetry" / "events.jsonl").write_text(
            'not json at all\n{"still": "not an event"}\n'
        )
        code = main(["campaign", "status", str(tmp_path / "c")])
        out = capsys.readouterr().out
        assert code == 0  # store itself is complete
        assert "unreadable event log" in out

    def test_status_shows_live_rates_for_telemetry_runs(self, tmp_path, capsys):
        run_campaign(tmp_path / "c", telemetry=True)
        code = main(["campaign", "status", str(tmp_path / "c")])
        out = capsys.readouterr().out
        assert code == 0
        assert "frames/s" in out and "run complete" in out

    def test_watch_exits_when_campaign_completes(self, tmp_path, capsys):
        run_campaign(tmp_path / "c", telemetry=True)
        code = main([
            "campaign", "status", str(tmp_path / "c"),
            "--watch", "--interval", "0.05",
        ])
        assert code == 0
        assert "TOTAL" in capsys.readouterr().out

    def test_watch_on_missing_store_fails_cleanly(self, tmp_path, capsys):
        code = main([
            "campaign", "status", str(tmp_path / "missing"),
            "--watch", "--interval", "0.05",
        ])
        assert code == 2

    def test_trace_cli_renders_and_fails_cleanly(self, tmp_path, capsys):
        run_campaign(tmp_path / "c", telemetry=True)
        assert main(["campaign", "trace", str(tmp_path / "c")]) == 0
        assert "stage breakdown" in capsys.readouterr().out
        assert main(["campaign", "trace", str(tmp_path / "missing")]) == 2
        assert "telemetry" in capsys.readouterr().err

    def test_run_with_telemetry_flag(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        tiny_spec().save(spec_path)
        code = main([
            "campaign", "run", str(spec_path),
            "--dir", str(tmp_path / "c"), "--telemetry",
        ])
        assert code == 0
        assert (tmp_path / "c" / "telemetry" / "metrics.json").exists()
        assert "telemetry: recording to" in capsys.readouterr().out

    def test_no_telemetry_flag_beats_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "1")
        spec_path = tmp_path / "spec.json"
        tiny_spec().save(spec_path)
        code = main([
            "campaign", "run", str(spec_path),
            "--dir", str(tmp_path / "c"), "--no-telemetry",
        ])
        assert code == 0
        assert not (tmp_path / "c" / "telemetry").exists()


# --------------------------------------------------------------------- #
# Report integration
# --------------------------------------------------------------------- #
class TestReportSection:
    def test_report_gains_deterministic_telemetry_section(self, tmp_path):
        from repro.analysis.campaign.report import CampaignReport

        run_campaign(tmp_path / "c", telemetry=True)
        report = CampaignReport.from_store(tmp_path / "c", include_rates=False)
        text = report.to_text()
        assert "Execution telemetry (recorded)" in text
        assert "Frames simulated" in text
        # Deterministic: rendered twice from the recorded snapshot.
        again = CampaignReport.from_store(tmp_path / "c", include_rates=False)
        assert again.to_text() == text
        assert report.as_dict()["telemetry"]["counters"]["frames_total"] > 0

    def test_report_without_telemetry_omits_section(self, tmp_path):
        from repro.analysis.campaign.report import CampaignReport

        run_campaign(tmp_path / "c", telemetry=False)
        report = CampaignReport.from_store(tmp_path / "c", include_rates=False)
        assert "Execution telemetry" not in report.to_text()
        assert report.as_dict()["telemetry"] is None


# --------------------------------------------------------------------- #
# Telemetry under injected faults (fabric runs)
# --------------------------------------------------------------------- #
class TestFabricTelemetry:
    """The observability layer stays write-only and deterministic when the
    executor is the fabric and the failure schedule is hostile."""

    CHAOTIC = None  # built lazily: FaultPlan is imported inside the tests

    @staticmethod
    def _fabric(plan, workers=3):
        from repro.fabric import FabricConfig, LeasePolicy

        return FabricConfig(
            local_workers=workers,
            policy=LeasePolicy(
                ttl=5.0,
                max_attempts=6,
                backoff_base=1.0,
                backoff_factor=2.0,
                straggler_after=6.0,
            ),
            fault_plan=plan,
            wall_clock=False,
        )

    @staticmethod
    def _chaotic_plan():
        from repro.fabric import FaultPlan

        # One of everything: a death, a stale lease, a straggler and
        # duplicate deliveries — so the trace has every row to render.
        return FaultPlan(
            kill_after={"w2": 1},
            drop_heartbeat_after={"w1": 1},
            shard_ticks={"w1": 8},
            duplicate_leases=frozenset({0, 3}),
        )

    def test_fabric_telemetry_is_write_only(self, tmp_path):
        plain, _ = run_campaign(tmp_path / "plain", telemetry=False)
        spec = tiny_spec()
        store = ResultStore.create(tmp_path / "fabric", spec)
        CampaignScheduler(
            spec, store, telemetry=True, fabric=self._fabric(self._chaotic_plan())
        ).run()
        assert curve_bytes(store) == curve_bytes(plain)

    def test_fabric_run_emits_schema_valid_fault_events(self, tmp_path):
        spec = tiny_spec()
        store = ResultStore.create(tmp_path / "c", spec)
        CampaignScheduler(
            spec, store, telemetry=True, fabric=self._fabric(self._chaotic_plan())
        ).run()
        path = tmp_path / "c" / "telemetry" / "events.jsonl"
        validate_event_log(path)
        records = read_events(path)
        for kind in (
            "worker_join",
            "lease_granted",
            "lease_expired",
            "job_retry",
            "duplicate_delivery",
            "straggler_redispatch",
            "worker_leave",
        ):
            assert events_of_type(records, kind), f"no {kind} events recorded"
        # The scripted death is visible: w2 leaves without rejoining, and
        # some leases needed more than one attempt.
        leaves = {r["worker"] for r in events_of_type(records, "worker_leave")}
        assert "w2" in leaves
        assert any(r["attempt"] > 1 for r in events_of_type(records, "lease_granted"))

    def test_trace_renders_fault_events_deterministically(self, tmp_path):
        spec = tiny_spec()
        store = ResultStore.create(tmp_path / "c", spec)
        CampaignScheduler(
            spec, store, telemetry=True, fabric=self._fabric(self._chaotic_plan())
        ).run()
        text = trace_summary(tmp_path / "c")
        assert "Fabric fleet" in text
        assert "leases granted" in text and "retries" in text
        assert "straggler re-dispatches" in text and "duplicate" in text
        for worker in ("w0", "w1", "w2"):
            assert worker in text
        # Rendering is a pure function of the recorded log.
        assert trace_summary(tmp_path / "c") == text

    def test_trace_omits_fabric_section_for_pool_runs(self, tmp_path):
        run_campaign(tmp_path / "c", workers=2, telemetry=True)
        assert "Fabric fleet" not in trace_summary(tmp_path / "c")

    def test_seq_contiguous_across_killed_and_resumed_fabric_run(self, tmp_path):
        from repro.fabric import FabricStalledError, FaultPlan

        spec = tiny_spec()
        store = ResultStore.create(tmp_path / "c", spec)
        deadly = FaultPlan(kill_after={"w0": 1, "w1": 1, "w2": 1})
        with pytest.raises(FabricStalledError):
            CampaignScheduler(
                spec, store, telemetry=True, fabric=self._fabric(deadly)
            ).run()

        path = tmp_path / "c" / "telemetry" / "events.jsonl"
        validate_event_log(path)  # the stall left a well-formed log
        records = read_events(path)
        assert events_of_type(records, "campaign_end") == []
        assert len(events_of_type(records, "worker_leave")) == 3

        # Resume with a healthy fleet over the same store and log.
        store = ResultStore.open(tmp_path / "c")
        curves = CampaignScheduler(
            spec, store, telemetry=True, fabric=self._fabric(FaultPlan())
        ).run()
        assert all(len(curve.points) == 2 for curve in curves.values())
        validate_event_log(path)
        records = read_events(path)
        # Seq numbers are contiguous from zero across both runs: the resumed
        # writer continued exactly where the killed one stopped.
        assert [r["seq"] for r in records] == list(range(len(records)))
        assert len(events_of_type(records, "campaign_start")) == 2
        assert len(events_of_type(records, "campaign_end")) == 1
        runs = split_runs(records)
        assert len(runs) == 2
        # Both runs are fabric runs; the trace renders their fleets.
        text = trace_summary(tmp_path / "c")
        assert trace_summary(tmp_path / "c") == text
