"""Unit tests for repro.utils.rng and repro.utils.formatting."""

import numpy as np
import pytest

from repro.utils.formatting import (
    format_engineering,
    format_percentage,
    format_rate,
    format_table,
)
from repro.utils.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_seed_is_deterministic(self):
        a = ensure_rng(3).integers(0, 100, 10)
        b = ensure_rng(3).integers(0, 100, 10)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_invalid_type(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestSpawnRngs:
    def test_count(self):
        children = spawn_rngs(0, 5)
        assert len(children) == 5

    def test_streams_differ(self):
        children = spawn_rngs(0, 2)
        a = children[0].integers(0, 1000, 20)
        b = children[1].integers(0, 1000, 20)
        assert not np.array_equal(a, b)

    def test_deterministic_from_seed(self):
        a = [g.integers(0, 100) for g in spawn_rngs(9, 3)]
        b = [g.integers(0, 100) for g in spawn_rngs(9, 3)]
        assert a == b

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestFormatting:
    def test_table_alignment(self):
        table = format_table(["a", "bbb"], [[1, 2], [333, 4]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_table_title(self):
        assert format_table(["x"], [[1]], title="T").splitlines()[0] == "T"

    def test_table_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_percentage(self):
        assert format_percentage(0.16) == "16%"
        assert format_percentage(0.505, digits=1) == "50.5%"

    def test_rate_prefixes(self):
        assert format_rate(70e6) == "70 Mbps"
        assert format_rate(1.04e9) == "1.04 Gbps"
        assert format_rate(500.0) == "500 bps"

    def test_engineering_negative(self):
        assert format_engineering(-2e3, "b") == "-2 kb"
