"""Unit tests for repro.utils.rng and repro.utils.formatting."""

import numpy as np
import pytest

from repro.utils.formatting import (
    format_csv,
    format_engineering,
    format_markdown_table,
    format_percentage,
    format_rate,
    format_table,
)
from repro.utils.rng import (
    as_seed_sequence,
    ensure_rng,
    spawn_rngs,
    spawn_seed_sequences,
)


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_seed_is_deterministic(self):
        a = ensure_rng(3).integers(0, 100, 10)
        b = ensure_rng(3).integers(0, 100, 10)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_invalid_type(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestSpawnRngs:
    def test_count(self):
        children = spawn_rngs(0, 5)
        assert len(children) == 5

    def test_streams_differ(self):
        children = spawn_rngs(0, 2)
        a = children[0].integers(0, 1000, 20)
        b = children[1].integers(0, 1000, 20)
        assert not np.array_equal(a, b)

    def test_deterministic_from_seed(self):
        a = [g.integers(0, 100) for g in spawn_rngs(9, 3)]
        b = [g.integers(0, 100) for g in spawn_rngs(9, 3)]
        assert a == b

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_come_from_seed_sequence_spawn(self):
        """Regression: children must be SeedSequence.spawn derived (collision
        free), not built from 63-bit integer draws."""
        expected = [
            np.random.default_rng(ss) for ss in np.random.SeedSequence(17).spawn(4)
        ]
        children = spawn_rngs(17, 4)
        for child, reference in zip(children, expected):
            assert np.array_equal(
                child.integers(0, 2**32, 16), reference.integers(0, 2**32, 16)
            )

    def test_generator_input_spawns_fresh_children_per_call(self):
        gen = np.random.default_rng(5)
        first = spawn_rngs(gen, 2)
        second = spawn_rngs(gen, 2)
        a = first[0].integers(0, 2**32, 8)
        b = second[0].integers(0, 2**32, 8)
        assert not np.array_equal(a, b)


class TestSeedSequences:
    def test_as_seed_sequence_from_int(self):
        ss = as_seed_sequence(7)
        assert isinstance(ss, np.random.SeedSequence)
        assert ss.entropy == 7

    def test_as_seed_sequence_passthrough(self):
        ss = np.random.SeedSequence(1)
        assert as_seed_sequence(ss) is ss

    def test_as_seed_sequence_from_generator(self):
        gen = np.random.default_rng(3)
        assert as_seed_sequence(gen) is gen.bit_generator.seed_seq

    def test_as_seed_sequence_invalid(self):
        with pytest.raises(TypeError):
            as_seed_sequence("seed")

    def test_spawn_seed_sequences_deterministic(self):
        a = spawn_seed_sequences(9, 3)
        b = spawn_seed_sequences(9, 3)
        assert [s.spawn_key for s in a] == [s.spawn_key for s in b]
        assert len({s.spawn_key for s in a}) == 3

    def test_spawn_seed_sequences_negative_count(self):
        with pytest.raises(ValueError):
            spawn_seed_sequences(0, -2)


class TestFormatting:
    def test_table_alignment(self):
        table = format_table(["a", "bbb"], [[1, 2], [333, 4]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_table_title(self):
        assert format_table(["x"], [[1]], title="T").splitlines()[0] == "T"

    def test_table_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_markdown_table(self):
        table = format_markdown_table(["a", "bbb"], [[1, 2], [333, 4]], title="T")
        lines = table.splitlines()
        assert lines[0] == "### T"
        assert lines[2].startswith("| a")
        assert set(lines[3]) <= {"|", "-"}
        assert lines[4].startswith("| 1")

    def test_markdown_table_escapes_pipes(self):
        table = format_markdown_table(["h"], [["a|b"]])
        assert "a\\|b" in table

    def test_markdown_table_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_markdown_table(["a", "b"], [[1]])

    def test_csv_escaping(self):
        text = format_csv(["a", "b"], [["x,y", 'say "hi"'], ["plain", 2]])
        lines = text.splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == '"x,y","say ""hi"""'
        assert lines[2] == "plain,2"

    def test_csv_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_csv(["a", "b"], [[1]])

    def test_percentage(self):
        assert format_percentage(0.16) == "16%"
        assert format_percentage(0.505, digits=1) == "50.5%"

    def test_rate_prefixes(self):
        assert format_rate(70e6) == "70 Mbps"
        assert format_rate(1.04e9) == "1.04 Gbps"
        assert format_rate(500.0) == "500 bps"

    def test_engineering_negative(self):
        assert format_engineering(-2e3, "b") == "-2 kb"
