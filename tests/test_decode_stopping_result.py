"""Unit tests for repro.decode.stopping and repro.decode.result."""

import numpy as np
import pytest

from repro.decode.result import DecodeResult
from repro.decode.stopping import FixedIterations, SyndromeStopping


class TestSyndromeStopping:
    def test_stops_converged_frames(self):
        stopping = SyndromeStopping()
        flags = stopping.should_stop(1, np.array([True, False, True]))
        assert flags.tolist() == [True, False, True]

    def test_min_iterations_blocks_early_stop(self):
        stopping = SyndromeStopping(min_iterations=5)
        assert not stopping.should_stop(3, np.array([True])).any()
        assert stopping.should_stop(5, np.array([True])).all()

    def test_negative_min_iterations_rejected(self):
        with pytest.raises(ValueError):
            SyndromeStopping(min_iterations=-1)


class TestFixedIterations:
    def test_never_stops(self):
        stopping = FixedIterations()
        for iteration in (1, 10, 100):
            assert not stopping.should_stop(iteration, np.array([True, True])).any()


class TestDecodeResult:
    def test_batch_properties(self):
        result = DecodeResult(
            bits=np.zeros((3, 8), dtype=np.uint8),
            posterior_llrs=np.zeros((3, 8)),
            converged=np.array([True, False, True]),
            iterations=np.array([2, 10, 4]),
        )
        assert result.batch_size == 3
        assert not result.all_converged
        assert result.average_iterations == pytest.approx(16 / 3)

    def test_single_frame_properties(self):
        result = DecodeResult(
            bits=np.zeros(8, dtype=np.uint8),
            posterior_llrs=np.zeros(8),
            converged=np.array(True),
            iterations=np.array(3),
        )
        assert result.batch_size == 1
        assert result.all_converged
        assert result.average_iterations == 3.0

    def test_squeeze(self):
        result = DecodeResult(
            bits=np.zeros((1, 8), dtype=np.uint8),
            posterior_llrs=np.zeros((1, 8)),
            converged=np.array([True]),
            iterations=np.array([2]),
        )
        squeezed = result.squeeze()
        assert squeezed.bits.shape == (8,)
        # Squeezing a multi-frame result is a no-op.
        multi = DecodeResult(
            bits=np.zeros((2, 8), dtype=np.uint8),
            posterior_llrs=np.zeros((2, 8)),
            converged=np.array([True, True]),
            iterations=np.array([1, 1]),
        )
        assert multi.squeeze() is multi
