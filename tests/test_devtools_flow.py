"""The whole-program flow analyzer: call graph, taint, REP3xx/REP4xx.

Three layers of coverage:

* **Call-graph substrate** — :class:`repro.devtools.Project` unit tests:
  module naming, aliased-import canonicalization, re-export chains (with
  cycles), method resolution through annotations and base classes,
  dataclass-field typing and the callers index.
* **Taint engine** — RNG provenance propagation through assignments,
  helper returns and parameters, exercised via the ``returns_taint``
  fixpoint and via end-to-end rule behaviour on in-memory projects.
* **Paired fixtures** — every REP3xx/REP4xx rule has a multi-file bad
  project under ``tests/fixtures/flow/`` that must fire exactly that rule
  with an inter-file evidence chain, and a good sibling that must be
  clean.  A final regression test asserts ``src/repro`` itself analyzes
  clean — the CI gate, in-process.

Like the single-file linter's fixtures, the projects here are analyzed
from source text only — the flow analyzer never imports them.
"""

from dataclasses import replace
from pathlib import Path

import pytest

from repro.devtools import (
    DEFAULT_FLOW_CONFIG,
    FLOW_CODES,
    FLOW_RULES,
    Project,
    analyze_paths,
    analyze_sources,
    rule,
)
from repro.devtools.callgraph import (
    ClassInfo,
    FunctionInfo,
    module_name_for_path,
)
from repro.devtools.flow import _FlowAnalyzer

FIXTURES = Path(__file__).parent / "fixtures" / "flow"
REPO_ROOT = Path(__file__).parents[1]

#: Per-rule overrides: fixture projects are tiny free-standing trees, so
#: scope-by-path rules need their scopes pointed at the fixture files.
_FIXTURE_CONFIGS = {
    "REP402": replace(
        DEFAULT_FLOW_CONFIG,
        persistence_suffixes=("state_store.py",),
        persistence_whitelist=("filesafe.py",),
    ),
}


def _fixture_sources(name):
    directory = FIXTURES / name
    return {
        path.name: path.read_text(encoding="utf-8")
        for path in sorted(directory.glob("*.py"))
    }


def _analyze_fixture(code, flavour):
    sources = _fixture_sources(f"{code.lower()}_{flavour}")
    config = _FIXTURE_CONFIGS.get(code, DEFAULT_FLOW_CONFIG)
    return analyze_sources(sources, config=config), set(sources)


# --------------------------------------------------------------------------- #
# Rule catalog
# --------------------------------------------------------------------------- #
def test_flow_catalog_covers_both_families():
    assert set(FLOW_CODES) == {r.code for r in FLOW_RULES}
    assert any(code.startswith("REP3") for code in FLOW_CODES)
    assert any(code.startswith("REP4") for code in FLOW_CODES)
    for code in FLOW_CODES:
        assert rule(code).rationale


# --------------------------------------------------------------------------- #
# Call-graph substrate
# --------------------------------------------------------------------------- #
def test_module_name_for_path():
    assert module_name_for_path("src/repro/utils/rng.py") == "repro.utils.rng"
    assert module_name_for_path("src/repro/obs/__init__.py") == "repro.obs"
    assert module_name_for_path("helper.py") == "helper"


def test_aliased_import_canonicalization():
    project = Project.from_sources(
        {
            "app.py": "import numpy as np\nimport pkg.tools as tk\n",
            "pkg/__init__.py": "",
            "pkg/tools.py": "def craft():\n    return 1\n",
        }
    )
    app = project.modules["app"]
    assert (
        project.canonical(app, "np.random.default_rng")
        == "numpy.random.default_rng"
    )
    assert project.canonical(app, "tk.craft") == "pkg.tools.craft"
    resolved = project.lookup("pkg.tools.craft")
    assert isinstance(resolved, FunctionInfo)
    assert resolved.path == "pkg/tools.py"


def test_reexport_chain_through_package_init():
    project = Project.from_sources(
        {
            "pkg/__init__.py": "from pkg.inner import craft\n",
            "pkg/inner.py": "def craft():\n    return 1\n",
            "app.py": "from pkg import craft\n",
        }
    )
    app = project.modules["app"]
    assert project.canonical(app, "craft") == "pkg.inner.craft"
    assert isinstance(project.lookup("pkg.inner.craft"), FunctionInfo)


def test_reexport_cycle_terminates():
    """Mutually re-exporting modules must not hang canonicalization."""
    project = Project.from_sources(
        {
            "a.py": "from b import thing\n",
            "b.py": "from a import thing\n",
        }
    )
    module_a = project.modules["a"]
    # No fixpoint exists; the cycle guard just has to return *something*.
    assert isinstance(project.canonical(module_a, "thing"), str)


def test_method_resolution_via_annotation_and_bases():
    project = Project.from_sources(
        {
            "shapes.py": (
                "class Base:\n"
                "    def area(self):\n"
                "        return 0\n"
                "class Square(Base):\n"
                "    def side(self):\n"
                "        return 1\n"
            ),
            "app.py": (
                "from shapes import Square\n"
                "def measure(shape: Square):\n"
                "    return shape.area() + shape.side()\n"
            ),
        }
    )
    square = project.lookup("shapes.Square")
    assert isinstance(square, ClassInfo)
    inherited = project.method(square, "area")
    assert inherited is not None and inherited.qualname == "shapes.Base.area"

    measure = project.lookup("app.measure")
    scope = project.scope(measure)
    targets = {site.target for site in scope.calls}
    assert "shapes.Base.area" in targets
    assert "shapes.Square.side" in targets


def test_dataclass_field_type_resolution():
    project = Project.from_sources(
        {
            "jobs.py": (
                "import dataclasses\n"
                "import numpy as np\n"
                "@dataclasses.dataclass\n"
                "class Job:\n"
                "    seed_seq: np.random.SeedSequence\n"
            ),
        }
    )
    job = project.lookup("jobs.Job")
    assert isinstance(job, ClassInfo)
    assert project.field_type(job, "seed_seq") == "numpy.random.SeedSequence"
    assert project.field_type(job, "missing") is None


def test_callers_index_maps_cross_module_edges():
    project = Project.from_sources(
        {
            "lib.py": "def helper():\n    return 1\n",
            "app.py": "import lib\ndef run():\n    return lib.helper()\n",
        }
    )
    callers = project.callers()
    assert "lib.helper" in callers
    (caller, node), = callers["lib.helper"]
    assert caller.qualname == "app.run"
    assert node.lineno == 3


# --------------------------------------------------------------------------- #
# Taint engine
# --------------------------------------------------------------------------- #
def test_returns_taint_fixpoint_crosses_modules():
    project = Project.from_sources(
        {
            "leaf.py": (
                "import numpy as np\n"
                "def root_seq(seed):\n"
                "    return np.random.SeedSequence(seed)\n"
            ),
            "mid.py": (
                "import leaf\n"
                "def relay(seed):\n"
                "    return leaf.root_seq(seed)\n"
                "def unrelated():\n"
                "    return 42\n"
            ),
        }
    )
    analyzer = _FlowAnalyzer(project, DEFAULT_FLOW_CONFIG)
    analyzer.compute_returns_taint()
    assert analyzer.returns_taint["leaf.root_seq"] is True
    assert analyzer.returns_taint["mid.relay"] is True
    assert analyzer.returns_taint["mid.unrelated"] is False


def test_provenance_through_helper_is_not_flagged():
    """REP301 follows seeds across modules before flagging — a generator
    built from a helper-returned SeedSequence is fine."""
    sources = {
        "seeds.py": (
            "import numpy as np\n"
            "def shard_seq(seed, index):\n"
            "    return np.random.SeedSequence((seed, index))\n"
        ),
        "sim.py": (
            "import numpy as np\n"
            "import seeds\n"
            "def build(seed, index):\n"
            "    return np.random.default_rng(seeds.shard_seq(seed, index))\n"
        ),
    }
    assert analyze_sources(sources) == []


def test_rng_parameter_names_count_as_provenance():
    sources = {
        "sim.py": (
            "import numpy as np\n"
            "def build(rng_seed):\n"
            "    return np.random.default_rng(rng_seed)\n"
        ),
    }
    assert analyze_sources(sources) == []


def test_noqa_silences_flow_findings():
    sources = _fixture_sources("rep301_bad")
    dirty = analyze_sources(sources)
    assert [v.rule for v in dirty] == ["REP301"]
    target = dirty[0]
    lines = sources[target.path].splitlines()
    lines[target.line - 1] += "  # repro: noqa[REP301]"
    sources[target.path] = "\n".join(lines) + "\n"
    assert analyze_sources(sources) == []


def test_with_select_restricts_flow_rules():
    config = DEFAULT_FLOW_CONFIG.with_select(["REP402"])
    sources = _fixture_sources("rep301_bad")
    assert analyze_sources(sources, config=config) == []


def test_with_select_keeps_only_flow_codes():
    """The CLI hands the *combined* --select set (already validated by
    LinterConfig) to both analyzers; FlowConfig keeps its own codes."""
    config = DEFAULT_FLOW_CONFIG.with_select(["REP103", "REP402"])
    assert config.select == frozenset({"REP402"})


# --------------------------------------------------------------------------- #
# Paired fixtures: every rule fires on bad with a cross-file chain,
# stays silent on good
# --------------------------------------------------------------------------- #
def _mentions_other_file(violation, filenames):
    others = filenames - {violation.path}
    return any(
        name in entry for entry in violation.evidence for name in others
    )


@pytest.mark.parametrize("code", FLOW_CODES)
def test_bad_fixture_fires_rule_with_cross_file_evidence(code):
    violations, filenames = _analyze_fixture(code, "bad")
    assert violations, f"{code} bad fixture produced no violations"
    assert {v.rule for v in violations} == {code}
    assert any(
        _mentions_other_file(v, filenames) for v in violations
    ), f"{code}: no evidence chain crosses a file boundary"
    for violation in violations:
        assert violation.evidence
        assert "[chain:" in violation.message


@pytest.mark.parametrize("code", FLOW_CODES)
def test_good_fixture_is_clean(code):
    violations, _ = _analyze_fixture(code, "good")
    assert violations == [], "\n".join(v.render() for v in violations)


def test_violation_dict_carries_evidence():
    violations, _ = _analyze_fixture("REP402", "bad")
    payload = violations[0].as_dict()
    assert payload["rule"] == "REP402"
    assert isinstance(payload["evidence"], list) and payload["evidence"]


# --------------------------------------------------------------------------- #
# Self-application: the library's own tree is the ultimate good fixture
# --------------------------------------------------------------------------- #
def test_src_repro_flow_analyzes_clean():
    violations = analyze_paths(
        [REPO_ROOT / "src" / "repro"], root=REPO_ROOT
    )
    assert violations == [], "\n".join(v.render() for v in violations)
