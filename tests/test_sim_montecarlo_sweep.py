"""Unit tests for repro.sim.montecarlo and repro.sim.sweep."""

import numpy as np
import pytest

from repro.codes.shortening import ShortenedCode
from repro.decode import NormalizedMinSumDecoder
from repro.sim.montecarlo import MonteCarloSimulator, SimulationConfig
from repro.sim.sweep import EbN0Sweep


class TestSimulationConfig:
    def test_defaults(self):
        config = SimulationConfig()
        assert config.max_frames >= 1
        assert config.target_frame_errors >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(max_frames=0)
        with pytest.raises(ValueError):
            SimulationConfig(target_frame_errors=0)
        with pytest.raises(ValueError):
            SimulationConfig(batch_frames=0)


class TestMonteCarloSimulator:
    def test_high_snr_point_is_error_free(self, scaled_code):
        decoder = NormalizedMinSumDecoder(scaled_code, max_iterations=20)
        config = SimulationConfig(max_frames=40, target_frame_errors=10, batch_frames=20)
        simulator = MonteCarloSimulator(scaled_code, decoder, config=config, rng=1)
        point = simulator.run_point(8.0)
        assert point.fer == 0.0
        assert point.frames == 40

    def test_low_snr_point_has_errors_and_stops_early(self, scaled_code):
        decoder = NormalizedMinSumDecoder(scaled_code, max_iterations=10)
        config = SimulationConfig(max_frames=500, target_frame_errors=5, batch_frames=10)
        simulator = MonteCarloSimulator(scaled_code, decoder, config=config, rng=2)
        point = simulator.run_point(0.0)
        assert point.frame_errors >= 5
        assert point.frames < 500  # stopped on the error target

    def test_ber_decreases_with_snr(self, scaled_code):
        decoder = NormalizedMinSumDecoder(scaled_code, max_iterations=15)
        config = SimulationConfig(max_frames=60, target_frame_errors=60, batch_frames=30)
        simulator_lo = MonteCarloSimulator(scaled_code, decoder, config=config, rng=3)
        simulator_hi = MonteCarloSimulator(scaled_code, decoder, config=config, rng=3)
        assert simulator_hi.run_point(6.0).ber <= simulator_lo.run_point(2.0).ber

    def test_all_zero_and_random_data_agree_statistically(self, scaled_code):
        """Linear code + symmetric channel: the transmitted codeword does not matter."""
        config_rand = SimulationConfig(max_frames=60, target_frame_errors=60, batch_frames=30)
        config_zero = SimulationConfig(
            max_frames=60, target_frame_errors=60, batch_frames=30, all_zero_codeword=True
        )
        decoder = NormalizedMinSumDecoder(scaled_code, max_iterations=15)
        ber_rand = MonteCarloSimulator(scaled_code, decoder, config=config_rand, rng=4).run_point(4.0).ber
        ber_zero = MonteCarloSimulator(scaled_code, decoder, config=config_zero, rng=4).run_point(4.0).ber
        # Same order of magnitude is all that can be asserted at these counts.
        assert abs(np.log10(ber_rand + 1e-6) - np.log10(ber_zero + 1e-6)) < 1.0

    def test_code_rate_property(self, scaled_code):
        decoder = NormalizedMinSumDecoder(scaled_code, max_iterations=5)
        simulator = MonteCarloSimulator(scaled_code, decoder, rng=0)
        assert simulator.code_rate == pytest.approx(scaled_code.rate)

    def test_shortened_code_all_zero(self, scaled_code):
        shortened = ShortenedCode(scaled_code, info_bits=scaled_code.dimension - 8)
        decoder = NormalizedMinSumDecoder(scaled_code, max_iterations=15)
        config = SimulationConfig(max_frames=20, target_frame_errors=20, batch_frames=10,
                                  all_zero_codeword=True)
        simulator = MonteCarloSimulator(shortened, decoder, config=config, rng=5)
        point = simulator.run_point(6.0)
        assert point.frames == 20
        assert simulator.code_rate == pytest.approx(shortened.rate)

    def test_shortened_code_random_data_via_from_encoder(self, scaled_code, scaled_encoder):
        shortened = ShortenedCode.from_encoder(
            scaled_code, scaled_encoder, info_bits=scaled_code.dimension - 8
        )
        decoder = NormalizedMinSumDecoder(scaled_code, max_iterations=15)
        config = SimulationConfig(max_frames=10, target_frame_errors=10, batch_frames=5)
        simulator = MonteCarloSimulator(shortened, decoder, config=config, rng=6)
        point = simulator.run_point(7.0)
        assert point.frames == 10

    def test_shortened_code_random_data_with_bad_positions_raises(self, scaled_code):
        shortened = ShortenedCode(scaled_code, info_bits=scaled_code.dimension - 8)
        decoder = NormalizedMinSumDecoder(scaled_code, max_iterations=5)
        with pytest.raises(ValueError):
            MonteCarloSimulator(shortened, decoder, rng=0)

    def test_shortened_ber_counts_transmitted_bits_only(self, scaled_code):
        """Regression: the BER denominator used to include never-transmitted
        virtual-fill bits, silently underestimating the BER."""
        shortened = ShortenedCode(scaled_code, info_bits=scaled_code.dimension - 8)
        decoder = NormalizedMinSumDecoder(scaled_code, max_iterations=10)
        config = SimulationConfig(max_frames=20, target_frame_errors=20, batch_frames=10,
                                  all_zero_codeword=True)
        simulator = MonteCarloSimulator(shortened, decoder, config=config, rng=5)
        point = simulator.run_point(3.0)
        assert simulator.counted_bits_per_frame == shortened.transmitted_code_bits
        assert point.bits == point.frames * shortened.transmitted_code_bits
        assert point.bits < point.frames * scaled_code.block_length

    def test_plain_code_ber_denominator_unchanged(self, scaled_code):
        decoder = NormalizedMinSumDecoder(scaled_code, max_iterations=5)
        config = SimulationConfig(max_frames=10, target_frame_errors=10, batch_frames=10,
                                  all_zero_codeword=True)
        point = MonteCarloSimulator(scaled_code, decoder, config=config, rng=6).run_point(4.0)
        assert point.bits == point.frames * scaled_code.block_length

    def test_info_bit_ber_exposed_with_encoder(self, scaled_code, scaled_encoder):
        shortened = ShortenedCode.from_encoder(
            scaled_code, scaled_encoder, info_bits=scaled_code.dimension - 8
        )
        decoder = NormalizedMinSumDecoder(scaled_code, max_iterations=10)
        config = SimulationConfig(max_frames=10, target_frame_errors=10, batch_frames=5)
        point = MonteCarloSimulator(shortened, decoder, config=config, rng=7).run_point(2.0)
        assert point.info_bits == point.frames * shortened.info_bits
        assert 0.0 <= point.info_ber <= 1.0
        # Info bits are a subset of transmitted bits, so errors cannot exceed
        # the overall bit errors.
        assert point.info_bit_errors <= point.bit_errors

    def test_info_bit_ber_zero_without_encoder(self, scaled_code):
        decoder = NormalizedMinSumDecoder(scaled_code, max_iterations=5)
        config = SimulationConfig(max_frames=10, target_frame_errors=10, batch_frames=10,
                                  all_zero_codeword=True)
        point = MonteCarloSimulator(scaled_code, decoder, config=config, rng=8).run_point(4.0)
        assert point.info_bits == 0
        assert point.info_ber == 0.0


class TestEbN0Sweep:
    def test_sweep_produces_sorted_curve(self, scaled_code):
        config = SimulationConfig(max_frames=30, target_frame_errors=10, batch_frames=15,
                                  all_zero_codeword=True)
        sweep = EbN0Sweep(
            scaled_code,
            lambda: NormalizedMinSumDecoder(scaled_code, max_iterations=10),
            config=config,
            rng=7,
        )
        curve = sweep.run([5.0, 3.0], label="nms")
        assert curve.label == "nms"
        assert curve.ebn0_values.tolist() == [3.0, 5.0]
        assert curve.points[0].ber >= curve.points[1].ber

    def test_progress_callback(self, scaled_code):
        messages = []
        config = SimulationConfig(max_frames=10, target_frame_errors=10, batch_frames=10,
                                  all_zero_codeword=True)
        sweep = EbN0Sweep(
            scaled_code,
            lambda: NormalizedMinSumDecoder(scaled_code, max_iterations=5),
            config=config,
            rng=8,
        )
        sweep.run([4.0], progress=messages.append)
        assert len(messages) == 1
        assert "Eb/N0" in messages[0]

    def test_format_curves(self, scaled_code):
        config = SimulationConfig(max_frames=10, target_frame_errors=10, batch_frames=10,
                                  all_zero_codeword=True)
        sweep = EbN0Sweep(
            scaled_code,
            lambda: NormalizedMinSumDecoder(scaled_code, max_iterations=5),
            config=config,
            rng=9,
        )
        curve = sweep.run([4.0], label="a")
        text = EbN0Sweep.format_curves([curve])
        assert "a BER" in text and "a PER" in text

    def test_reproducible_with_seed(self, scaled_code):
        config = SimulationConfig(max_frames=20, target_frame_errors=20, batch_frames=10,
                                  all_zero_codeword=True)
        def factory():
            return NormalizedMinSumDecoder(scaled_code, max_iterations=8)
        curve_a = EbN0Sweep(scaled_code, factory, config=config, rng=11).run([3.0])
        curve_b = EbN0Sweep(scaled_code, factory, config=config, rng=11).run([3.0])
        assert curve_a.points[0].ber == curve_b.points[0].ber
