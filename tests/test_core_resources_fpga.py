"""Unit tests for repro.core.resources and repro.core.fpga (Tables 2 and 3)."""

import pytest

from repro.core.configs import high_speed_architecture, low_cost_architecture
from repro.core.fpga import (
    CYCLONE_II_EP2C50F,
    STRATIX_II_EP2S180,
    STRATIX_II_EP2S60,
    device_library,
)
from repro.core.resources import estimate_resources


class TestTable2LowCost:
    """Paper Table 2: 8k ALUTs (16%), 6k registers (12%), 290k bits (50%)."""

    def test_absolute_resources(self):
        estimate = estimate_resources(low_cost_architecture())
        assert estimate.aluts == pytest.approx(8_000, rel=0.10)
        assert estimate.registers == pytest.approx(6_000, rel=0.10)
        assert estimate.memory_bits == pytest.approx(290_000, rel=0.08)

    def test_utilization_on_cyclone(self):
        utilization = CYCLONE_II_EP2C50F.utilization(
            estimate_resources(low_cost_architecture())
        )
        assert utilization.alut_fraction == pytest.approx(0.16, abs=0.02)
        assert utilization.register_fraction == pytest.approx(0.12, abs=0.02)
        assert utilization.memory_fraction == pytest.approx(0.50, abs=0.03)
        assert utilization.fits

    def test_report_row_format(self):
        utilization = CYCLONE_II_EP2C50F.utilization(
            estimate_resources(low_cost_architecture())
        )
        row = utilization.as_row()
        assert set(row) == {"ALUTs", "Registers", "Total Memory Bits"}
        assert row["ALUTs"].endswith("%)")


class TestTable3HighSpeed:
    """Paper Table 3: 38k ALUTs (27%), 30k registers (20%), ~1300k bits."""

    def test_absolute_resources(self):
        estimate = estimate_resources(high_speed_architecture())
        assert estimate.aluts == pytest.approx(38_000, rel=0.10)
        assert estimate.registers == pytest.approx(30_000, rel=0.10)
        assert estimate.memory_bits == pytest.approx(1_300_000, rel=0.10)

    def test_utilization_on_stratix(self):
        utilization = STRATIX_II_EP2S180.utilization(
            estimate_resources(high_speed_architecture())
        )
        assert utilization.alut_fraction == pytest.approx(0.27, abs=0.03)
        assert utilization.register_fraction == pytest.approx(0.20, abs=0.03)
        assert utilization.fits

    def test_scaling_claim_of_section_4_2(self):
        """8x the throughput for roughly 4-5x the resources."""
        low = estimate_resources(low_cost_architecture())
        high = estimate_resources(high_speed_architecture())
        ratios = high.scaled_by(low)
        assert 4.0 < ratios["aluts"] < 5.5
        assert 4.0 < ratios["registers"] < 5.5
        assert 3.5 < ratios["memory_bits"] < 6.0

    def test_high_speed_does_not_fit_the_low_cost_device(self):
        estimate = estimate_resources(high_speed_architecture())
        assert not CYCLONE_II_EP2C50F.fits(estimate)


class TestResourceBreakdown:
    def test_logic_breakdown_sums(self):
        estimate = estimate_resources(low_cost_architecture())
        assert sum(estimate.logic_breakdown.values()) == estimate.aluts

    def test_memory_breakdown_sums(self):
        estimate = estimate_resources(low_cost_architecture())
        assert sum(estimate.memory_breakdown.values()) == estimate.memory_bits

    def test_logic_grows_with_message_bits(self):
        narrow = estimate_resources(low_cost_architecture(message_bits=4, channel_bits=4))
        wide = estimate_resources(low_cost_architecture(message_bits=8, channel_bits=8))
        assert wide.aluts > narrow.aluts
        assert wide.memory_bits > narrow.memory_bits


class TestDeviceLibrary:
    def test_library_contents(self):
        library = device_library()
        assert "Cyclone II EP2C50F" in library
        assert "Stratix II EP2S180" in library
        assert library["Stratix II EP2S180"].aluts == 143_520

    def test_mid_range_devices(self):
        from repro.core.fpga import CYCLONE_II_EP2C35

        low = estimate_resources(low_cost_architecture())
        high = estimate_resources(high_speed_architecture())
        # The smaller Cyclone II still fits the low-cost decoder but lacks the
        # memory for the eight-frame version.
        assert CYCLONE_II_EP2C35.fits(low)
        assert not CYCLONE_II_EP2C35.fits(high)
        assert STRATIX_II_EP2S60.fits(low)
