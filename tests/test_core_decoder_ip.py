"""Unit tests for repro.core.decoder_ip and repro.core.report."""

import numpy as np
import pytest

from repro.channel.awgn import ebn0_to_sigma
from repro.channel.llr import channel_llrs
from repro.channel.modulation import BPSKModulator
from repro.core.configs import (
    high_speed_architecture,
    low_cost_architecture,
    scaled_architecture,
)
from repro.core.decoder_ip import CCSDSDecoderIP
from repro.core.fpga import CYCLONE_II_EP2C50F, STRATIX_II_EP2S180
from repro.core.report import implementation_report, throughput_table


@pytest.fixture(scope="module")
def scaled_ip(request):
    code = request.getfixturevalue("scaled_code")
    params = scaled_architecture(code.circulant_size)
    return CCSDSDecoderIP(code, params, iterations=18)


class TestConstruction:
    def test_structure_mismatch_rejected(self, scaled_code):
        with pytest.raises(ValueError):
            CCSDSDecoderIP(scaled_code, low_cost_architecture())

    def test_repr_mentions_config(self, scaled_ip):
        assert "low-cost" in repr(scaled_ip)


class TestFunctionalModel:
    def test_decodes_noiseless_frame(self, scaled_ip, scaled_code, scaled_encoder, rng):
        info = rng.integers(0, 2, size=scaled_encoder.dimension, dtype=np.uint8)
        codeword = scaled_encoder.encode(info)
        llrs = 6.0 * (1.0 - 2.0 * codeword.astype(np.float64))
        result = scaled_ip.decode(llrs)
        assert np.array_equal(result.bits, codeword)

    def test_decodes_noisy_batch(self, scaled_ip, scaled_code, scaled_encoder):
        rng = np.random.default_rng(5)
        info = rng.integers(0, 2, size=(8, scaled_encoder.dimension), dtype=np.uint8)
        codewords = scaled_encoder.encode(info)
        sigma = ebn0_to_sigma(5.0, scaled_code.rate)
        rx = BPSKModulator().modulate(codewords) + rng.normal(0, sigma, codewords.shape)
        result = scaled_ip.decode(channel_llrs(rx, sigma))
        errors = int((result.bits != codewords).sum())
        assert errors / codewords.size < 0.01

    def test_runs_fixed_iterations_like_hardware(self, scaled_ip, scaled_code):
        llrs = np.full(scaled_code.block_length, 4.0)
        result = scaled_ip.decode(llrs)
        assert int(np.asarray(result.iterations)) == scaled_ip.iterations


class TestAnalyticalModel:
    def test_throughput_uses_programmed_iterations(self, scaled_ip):
        default = scaled_ip.throughput()
        explicit = scaled_ip.throughput(iterations=18)
        assert default.throughput_bps == explicit.throughput_bps

    def test_throughput_table_rows(self, scaled_ip):
        rows = scaled_ip.throughput_table()
        assert [row.iterations for row in rows] == [10, 18, 50]
        assert rows[0].throughput_bps > rows[-1].throughput_bps

    def test_resources_and_utilization(self, scaled_ip):
        estimate = scaled_ip.resources()
        assert estimate.aluts > 0 and estimate.memory_bits > 0
        report = scaled_ip.utilization(CYCLONE_II_EP2C50F)
        assert 0 < report.alut_fraction < 1


class TestReports:
    def test_throughput_table_text_matches_paper_numbers(self):
        text = throughput_table([low_cost_architecture(), high_speed_architecture()])
        assert "Table 1" in text
        assert "130 Mbps" in text  # low-cost at 10 iterations
        assert "26 Mbps" in text or "25 Mbps" in text

    def test_implementation_report_text(self):
        text = implementation_report(low_cost_architecture(), CYCLONE_II_EP2C50F)
        assert "Cyclone II" in text
        assert "Memory breakdown" in text
        text_high = implementation_report(high_speed_architecture(), STRATIX_II_EP2S180)
        assert "Stratix II" in text_high
