"""Unit tests for repro.core.parameters and repro.core.configs."""

import pytest

from repro.core.configs import (
    high_speed_architecture,
    low_cost_architecture,
    scaled_architecture,
)
from repro.core.memory import MessageStorage
from repro.core.parameters import ArchitectureParameters


class TestArchitectureParameters:
    def test_ccsds_defaults(self):
        params = ArchitectureParameters()
        assert params.block_length == 8176
        assert params.num_checks == 1022
        assert params.num_edges == 32704
        assert params.check_degree == 32
        assert params.bit_degree == 4
        assert params.info_bits_per_frame == 7136

    def test_totals_scale_with_blocks(self):
        params = ArchitectureParameters(processing_blocks=8)
        assert params.total_bn_units == 16 * 8
        assert params.total_cn_units == 2 * 8
        assert params.concurrent_frames == 8

    def test_with_updates_returns_new_object(self):
        params = ArchitectureParameters()
        updated = params.with_updates(processing_blocks=4)
        assert updated.processing_blocks == 4
        assert params.processing_blocks == 1

    @pytest.mark.parametrize(
        "field,value",
        [
            ("circulant_size", 0),
            ("processing_blocks", 0),
            ("message_bits", 0),
            ("clock_frequency_hz", 0),
            ("alpha", 0.5),
            ("pipeline_overhead_cycles", -1),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            ArchitectureParameters(**{field: value})

    def test_too_many_units_rejected(self):
        with pytest.raises(ValueError):
            ArchitectureParameters(circulant_size=3, bn_units_per_block=100)


class TestConfigs:
    def test_low_cost_matches_paper_section_3(self):
        params = low_cost_architecture()
        assert params.bn_units_per_block == 16
        assert params.cn_units_per_block == 2
        assert params.processing_blocks == 1
        assert params.message_storage is MessageStorage.FULL_EDGE
        assert params.clock_frequency_hz == pytest.approx(200e6)

    def test_high_speed_is_eight_blocks(self):
        params = high_speed_architecture()
        assert params.processing_blocks == 8
        assert params.message_storage is MessageStorage.COMPRESSED_CHECK
        assert not params.separate_input_staging

    def test_overrides(self):
        params = low_cost_architecture(message_bits=5, clock_frequency_hz=100e6)
        assert params.message_bits == 5
        assert params.clock_frequency_hz == pytest.approx(100e6)

    def test_scaled_architecture(self):
        params = scaled_architecture(31)
        assert params.circulant_size == 31
        assert params.block_length == 31 * 16
        # Info bits scale with the circulant size.
        assert params.info_bits_per_frame == round(7136 * 31 / 511)

    def test_scaled_architecture_from_high_speed_base(self):
        params = scaled_architecture(63, base=high_speed_architecture())
        assert params.processing_blocks == 8
        assert params.circulant_size == 63
