"""Tests for paper-recorded reference crossings and `campaign verify`."""

import json

import pytest

from repro.analysis.campaign import CampaignReport
from repro.analysis.reference_data import (
    PAPER_REFERENCE_CROSSINGS,
    ReferenceCrossing,
    compare_to_reference,
    load_references,
    save_references,
)
from repro.cli import main
from repro.sim import SimulationConfig
from repro.sim.campaign import (
    CampaignSpec,
    CodeSpec,
    DecoderSpec,
    ExperimentSpec,
    ResultStore,
)
from repro.sim.results import SimulationPoint


def make_point(ebn0, ber, frames=100):
    fer = min(1.0, ber * 10)
    return SimulationPoint(
        ebn0_db=float(ebn0), ber=float(ber), fer=fer,
        bit_errors=int(ber * 1e6), frame_errors=min(frames, int(fer * frames)),
        bits=10**6, frames=frames,
    )


def fabricated_store(tmp_path, name="ref"):
    """Analytic waterfalls: nms crosses BER 1e-3 at exactly 4 1/3 dB."""
    code = CodeSpec(family="scaled", circulant=31)
    spec = CampaignSpec(
        name=name,
        seed=11,
        ebn0=(3.0, 4.0, 5.0),
        config=SimulationConfig(max_frames=100, target_frame_errors=50,
                                batch_frames=10, all_zero_codeword=True),
        experiments=[
            ExperimentSpec("nms", code, DecoderSpec("nms", 18, params={"alpha": 1.25})),
            ExperimentSpec("min-sum", code, DecoderSpec("min-sum", 18)),
        ],
    )
    store = ResultStore.create(tmp_path / name, spec)
    for label, shift in {"nms": 0.0, "min-sum": 0.4}.items():
        for ebn0 in spec.ebn0:
            ber = min(0.5, 10 ** (-1.0 - 1.5 * (ebn0 - shift - 3.0)))
            store.record_point(label, make_point(ebn0, ber))
    return store


def report_for(store):
    return CampaignReport.from_store(store, target_ber=1e-3, include_rates=False)


class TestReferenceCrossing:
    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            ReferenceCrossing(target=0.0, ebn0_db=4.0)
        with pytest.raises(ValueError, match="metric"):
            ReferenceCrossing(target=1e-4, ebn0_db=4.0, metric="per")
        with pytest.raises(ValueError, match="unknown ReferenceCrossing keys"):
            ReferenceCrossing.from_dict({"target": 1e-4, "ebn0_db": 4.0, "nope": 1})

    def test_matching_by_label_code_and_kind(self, tmp_path):
        report = report_for(fabricated_store(tmp_path))
        nms = next(e for e in report.experiments if e.label == "nms")
        assert ReferenceCrossing(target=1e-3, ebn0_db=4.0, label="nms").matches(nms)
        assert not ReferenceCrossing(target=1e-3, ebn0_db=4.0, label="other").matches(nms)
        assert ReferenceCrossing(target=1e-3, ebn0_db=4.0, code_key="scaled31").matches(nms)
        assert not ReferenceCrossing(target=1e-3, ebn0_db=4.0, code_key="ccsds-c2").matches(nms)
        assert ReferenceCrossing(target=1e-3, ebn0_db=4.0, decoder_kind="nms").matches(nms)
        assert not ReferenceCrossing(target=1e-3, ebn0_db=4.0, decoder_kind="quantized").matches(nms)
        # No selectors: matches anything.
        assert ReferenceCrossing(target=1e-3, ebn0_db=4.0).matches(nms)

    def test_paper_set_shape(self):
        assert PAPER_REFERENCE_CROSSINGS
        for reference in PAPER_REFERENCE_CROSSINGS:
            assert reference.code_key == "ccsds-c2"
            assert reference.source
            assert 3.0 < reference.ebn0_db < 5.0

    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "refs.json"
        save_references(PAPER_REFERENCE_CROSSINGS, path)
        assert load_references(path) == PAPER_REFERENCE_CROSSINGS

    def test_load_rejects_unknown_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "nope", "references": []}))
        with pytest.raises(ValueError, match="unknown reference format"):
            load_references(path)

    def test_load_rejects_non_object_top_level(self, tmp_path):
        # Regression: a JSON array used to escape as AttributeError, which
        # the CLI's usage-error handling does not catch.
        path = tmp_path / "list.json"
        path.write_text("[]")
        with pytest.raises(ValueError, match="not a reference file"):
            load_references(path)


class TestCompareToReference:
    def test_pass_within_tolerance(self, tmp_path):
        report = report_for(fabricated_store(tmp_path))
        measured = next(e for e in report.experiments if e.label == "nms").ber_crossing
        references = [ReferenceCrossing(target=1e-3, ebn0_db=measured.ebn0_db + 0.05,
                                        label="nms")]
        check = compare_to_reference(report, 0.1, references=references)
        assert check.passed
        [comparison] = check.comparisons
        assert comparison.status == "ok"
        assert comparison.delta_db == pytest.approx(-0.05)
        assert comparison.exact is True

    def test_fail_beyond_tolerance(self, tmp_path):
        report = report_for(fabricated_store(tmp_path))
        measured = next(e for e in report.experiments if e.label == "nms").ber_crossing
        references = [ReferenceCrossing(target=1e-3, ebn0_db=measured.ebn0_db - 0.5,
                                        label="nms")]
        check = compare_to_reference(report, 0.1, references=references)
        assert not check.passed
        assert check.failures[0].status == "drift"
        assert check.failures[0].delta_db == pytest.approx(0.5)

    def test_tolerance_boundary_is_inclusive(self, tmp_path):
        report = report_for(fabricated_store(tmp_path))
        measured = next(e for e in report.experiments if e.label == "nms").ber_crossing
        at_boundary = [ReferenceCrossing(target=1e-3,
                                         ebn0_db=measured.ebn0_db - 0.1, label="nms")]
        assert compare_to_reference(report, 0.1, references=at_boundary).passed
        past_boundary = [ReferenceCrossing(target=1e-3,
                                           ebn0_db=measured.ebn0_db - 0.10001,
                                           label="nms")]
        assert not compare_to_reference(report, 0.1, references=past_boundary).passed

    def test_reference_target_overrides_report_target(self, tmp_path):
        # The report was built at target 1e-3; the reference asks for 1e-2
        # and must be compared at *its* crossing, not the report's.
        store = fabricated_store(tmp_path)
        report = report_for(store)
        curve = next(e for e in report.experiments if e.label == "nms").record.curve
        expected = curve.ebn0_at_ber(1e-2)
        references = [ReferenceCrossing(target=1e-2, ebn0_db=expected, label="nms")]
        check = compare_to_reference(report, 0.01, references=references)
        assert check.passed
        assert check.comparisons[0].measured_db == pytest.approx(expected)

    def test_no_crossing_is_a_failure(self, tmp_path):
        report = report_for(fabricated_store(tmp_path))
        references = [ReferenceCrossing(target=1e-12, ebn0_db=4.0, label="nms")]
        check = compare_to_reference(report, 0.1, references=references)
        assert not check.passed
        assert check.comparisons[0].status == "no-crossing"

    def test_unmatched_alone_does_not_pass(self, tmp_path):
        report = report_for(fabricated_store(tmp_path))
        check = compare_to_reference(report, 0.1)  # paper set: ccsds-c2 only
        assert all(c.status == "unmatched" for c in check.comparisons)
        assert not check.matched
        assert not check.passed

    def test_kind_reference_checks_every_variant(self, tmp_path):
        code = CodeSpec(family="scaled", circulant=31)
        spec = CampaignSpec(
            name="variants", seed=1, ebn0=(3.0, 4.0, 5.0),
            config=SimulationConfig(max_frames=10, target_frame_errors=5,
                                    batch_frames=5, all_zero_codeword=True),
            experiments=[
                ExperimentSpec("nms-a", code, DecoderSpec("nms", 10)),
                ExperimentSpec("nms-b", code, DecoderSpec("nms", 20)),
            ],
        )
        store = ResultStore.create(tmp_path / "variants", spec)
        for label in ("nms-a", "nms-b"):
            for ebn0 in spec.ebn0:
                store.record_point(label, make_point(ebn0, 10 ** (-ebn0 + 1.5)))
        report = report_for(store)
        references = [ReferenceCrossing(target=1e-3, ebn0_db=4.5, decoder_kind="nms")]
        check = compare_to_reference(report, 0.2, references=references)
        assert len(check.matched) == 2
        assert {c.label for c in check.matched} == {"nms-a", "nms-b"}

    def test_invalid_tolerance_rejected(self, tmp_path):
        report = report_for(fabricated_store(tmp_path))
        with pytest.raises(ValueError, match="tolerance"):
            compare_to_reference(report, 0.0)

    def test_table_and_dict_outputs(self, tmp_path):
        report = report_for(fabricated_store(tmp_path))
        measured = next(e for e in report.experiments if e.label == "nms").ber_crossing
        references = [ReferenceCrossing(target=1e-3, ebn0_db=measured.ebn0_db,
                                        label="nms", source="fixture")]
        check = compare_to_reference(report, 0.1, references=references)
        table = check.to_table()
        assert "Reference crossings" in table and "fixture" in table
        data = check.as_dict()
        assert data["passed"] is True
        assert data["comparisons"][0]["status"] == "ok"


class TestVerifyCLI:
    def _write_references(self, tmp_path, store, *, shift=0.0):
        report = report_for(store)
        measured = next(e for e in report.experiments if e.label == "nms").ber_crossing
        path = tmp_path / f"refs-{shift}.json"
        save_references(
            [ReferenceCrossing(target=1e-3, ebn0_db=measured.ebn0_db + shift,
                               label="nms", source="fixture")],
            path,
        )
        return path

    def test_verify_passes_within_tolerance(self, tmp_path, capsys):
        store = fabricated_store(tmp_path)
        refs = self._write_references(tmp_path, store)
        assert main([
            "campaign", "verify", str(store.directory), "--reference", str(refs),
        ]) == 0
        out = capsys.readouterr().out
        assert "OK:" in out and "Reference crossings" in out

    def test_verify_fails_on_drift(self, tmp_path, capsys):
        store = fabricated_store(tmp_path)
        refs = self._write_references(tmp_path, store, shift=1.0)
        assert main([
            "campaign", "verify", str(store.directory), "--reference", str(refs),
        ]) == 1
        captured = capsys.readouterr()
        assert "FAIL" in captured.err
        assert "drift" in captured.out

    def test_verify_custom_tolerance_allows_drift(self, tmp_path):
        store = fabricated_store(tmp_path)
        refs = self._write_references(tmp_path, store, shift=1.0)
        assert main([
            "campaign", "verify", str(store.directory),
            "--reference", str(refs), "--tolerance-db", "1.5",
        ]) == 0

    def test_verify_fails_when_nothing_matches(self, tmp_path, capsys):
        store = fabricated_store(tmp_path)
        assert main(["campaign", "verify", str(store.directory)]) == 1
        assert "no reference matched" in capsys.readouterr().err

    def test_verify_bad_reference_file_exits_2(self, tmp_path, capsys):
        store = fabricated_store(tmp_path)
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main([
            "campaign", "verify", str(store.directory), "--reference", str(bad),
        ]) == 2
        assert "cannot load reference file" in capsys.readouterr().err

    def test_verify_list_reference_file_exits_2(self, tmp_path, capsys):
        store = fabricated_store(tmp_path)
        bad = tmp_path / "list.json"
        bad.write_text("[]")
        assert main([
            "campaign", "verify", str(store.directory), "--reference", str(bad),
        ]) == 2
        assert "cannot load reference file" in capsys.readouterr().err

    def test_verify_missing_directory_exits_2(self, tmp_path, capsys):
        assert main(["campaign", "verify", str(tmp_path / "nope")]) == 2
        assert "cannot open" in capsys.readouterr().err

    def test_verify_fails_on_unreadable_experiment(self, tmp_path, capsys):
        # A corrupt curve file must fail the gate even when every *readable*
        # experiment passes — its references would otherwise silently become
        # "unmatched" and the corruption would ride a green build.
        store = fabricated_store(tmp_path)
        refs = self._write_references(tmp_path, store)
        store.curve_path("min-sum").write_text("{broken json")
        assert main([
            "campaign", "verify", str(store.directory), "--reference", str(refs),
        ]) == 1
        err = capsys.readouterr().err
        assert "unreadable" in err and "min-sum" in err


class TestChannelAwareMatching:
    """References are channel-scoped: AWGN-recorded values must not gate
    hard-decision or fading variants of the same code/decoder."""

    def two_channel_store(self, tmp_path):
        code = CodeSpec(family="scaled", circulant=31)
        from repro.sim.campaign import ChannelSpec

        spec = CampaignSpec(
            name="channels",
            seed=4,
            ebn0=(3.0, 4.0, 5.0),
            config=SimulationConfig(max_frames=100, target_frame_errors=50,
                                    batch_frames=10, all_zero_codeword=True),
            experiments=[
                ExperimentSpec("nms-awgn", code, DecoderSpec("nms", 18)),
                ExperimentSpec("nms-bsc", code, DecoderSpec("nms", 18),
                               channel=ChannelSpec(kind="bsc")),
            ],
        )
        store = ResultStore.create(tmp_path / "channels", spec)
        # The BSC curve sits 0.5 dB to the right (5x the verify
        # tolerance) — physics, not drift.
        for label, shift in {"nms-awgn": 0.0, "nms-bsc": 0.5}.items():
            for ebn0 in spec.ebn0:
                ber = min(0.5, 10 ** (-1.0 - 1.5 * (ebn0 - shift - 3.0)))
                store.record_point(label, make_point(ebn0, ber))
        return store

    def test_channel_less_reference_matches_only_awgn(self, tmp_path):
        report = report_for(self.two_channel_store(tmp_path))
        awgn_crossing = next(
            e for e in report.experiments if e.label == "nms-awgn"
        ).ber_crossing.ebn0_db
        reference = ReferenceCrossing(
            target=1e-3, ebn0_db=awgn_crossing,
            code_key="scaled31", decoder_kind="nms",
        )
        by_label = {e.label: e for e in report.experiments}
        assert reference.matches(by_label["nms-awgn"])
        assert not reference.matches(by_label["nms-bsc"])
        # The verify gate therefore passes: the BSC curve is out of scope.
        check = compare_to_reference(report, 0.1, references=[reference])
        assert check.passed
        assert [c.label for c in check.matched] == ["nms-awgn"]

    def test_channel_key_selector_targets_a_non_awgn_link(self, tmp_path):
        report = report_for(self.two_channel_store(tmp_path))
        bsc_crossing = next(
            e for e in report.experiments if e.label == "nms-bsc"
        ).ber_crossing.ebn0_db
        reference = ReferenceCrossing(
            target=1e-3, ebn0_db=bsc_crossing,
            code_key="scaled31", decoder_kind="nms", channel_key="bsc",
        )
        check = compare_to_reference(report, 0.1, references=[reference])
        assert check.passed
        assert [c.label for c in check.matched] == ["nms-bsc"]
        assert "bsc" in reference.describe()

    def test_label_pin_overrides_the_channel_default(self, tmp_path):
        report = report_for(self.two_channel_store(tmp_path))
        by_label = {e.label: e for e in report.experiments}
        pinned = ReferenceCrossing(target=1e-3, ebn0_db=5.0, label="nms-bsc")
        assert pinned.matches(by_label["nms-bsc"])
        assert not pinned.matches(by_label["nms-awgn"])

    def test_channel_key_survives_json_round_trip(self, tmp_path):
        path = tmp_path / "refs.json"
        save_references(
            [ReferenceCrossing(target=1e-3, ebn0_db=4.0, channel_key="bsc")],
            path,
        )
        (loaded,) = load_references(path)
        assert loaded.channel_key == "bsc"
        assert loaded.as_dict()["channel_key"] == "bsc"
