"""Unit tests for the hard-decision decoders (Gallager-B, weighted bit flipping)."""

import numpy as np
import pytest

from repro.channel.awgn import ebn0_to_sigma
from repro.channel.llr import channel_llrs
from repro.channel.modulation import BPSKModulator
from repro.decode import GallagerBDecoder, NormalizedMinSumDecoder, WeightedBitFlippingDecoder


def _corrupt(code, encoder, num_errors: int, frames: int = 6, seed: int = 17):
    """Codewords with a handful of hard bit errors (within hard-decision reach)."""
    rng = np.random.default_rng(seed)
    info = rng.integers(0, 2, size=(frames, encoder.dimension), dtype=np.uint8)
    codewords = encoder.encode(info)
    llrs = 5.0 * (1.0 - 2.0 * codewords.astype(np.float64))
    # Flip random positions per frame (also weaken their reliability so the
    # weighted flipping metric can find them).
    for frame in range(codewords.shape[0]):
        positions = rng.choice(code.block_length, size=num_errors, replace=False)
        llrs[frame, positions] *= -0.4
    return codewords, llrs


@pytest.fixture(scope="module")
def lightly_corrupted(request):
    """Two hard errors per frame — within Gallager-B reach for this dense code."""
    code = request.getfixturevalue("scaled_code")
    encoder = request.getfixturevalue("scaled_encoder")
    codewords, llrs = _corrupt(code, encoder, num_errors=2)
    return code, codewords, llrs


@pytest.fixture(scope="module")
def moderately_corrupted(request):
    """Four hard errors per frame — the weighted-flipping test case."""
    code = request.getfixturevalue("scaled_code")
    encoder = request.getfixturevalue("scaled_encoder")
    codewords, llrs = _corrupt(code, encoder, num_errors=4)
    return code, codewords, llrs


class TestGallagerB:
    def test_noiseless_input_is_fixed_point(self, scaled_code, scaled_encoder, rng):
        info = rng.integers(0, 2, size=scaled_encoder.dimension, dtype=np.uint8)
        codeword = scaled_encoder.encode(info)
        llrs = 3.0 * (1.0 - 2.0 * codeword.astype(np.float64))
        result = GallagerBDecoder(scaled_code).decode(llrs)
        assert bool(result.converged)
        assert np.array_equal(result.bits, codeword)
        assert int(result.iterations) == 0  # syndrome checked before any flip round

    def test_corrects_few_hard_errors(self, lightly_corrupted):
        """With a couple of errors per frame the flipping rule helps; the very
        high check degree (32) of this code makes hard-decision decoding weak
        beyond that, which is exactly why the paper uses soft decoding."""
        code, codewords, llrs = lightly_corrupted
        result = GallagerBDecoder(code, max_iterations=30).decode(llrs)
        errors_before = int(((llrs < 0).astype(np.uint8) != codewords).sum())
        errors_after = int((result.bits != codewords).sum())
        assert errors_after < errors_before
        assert result.converged.sum() >= 1

    def test_default_threshold_is_majority(self, scaled_code):
        decoder = GallagerBDecoder(scaled_code)
        assert decoder.flip_threshold == 3  # column weight 4 -> strict majority

    def test_parameter_validation(self, scaled_code):
        with pytest.raises(ValueError):
            GallagerBDecoder(scaled_code, max_iterations=0)
        with pytest.raises(ValueError):
            GallagerBDecoder(scaled_code, flip_threshold=0)

    def test_wrong_length_rejected(self, scaled_code):
        with pytest.raises(ValueError):
            GallagerBDecoder(scaled_code).decode(np.zeros(3))

    def test_single_frame_interface(self, lightly_corrupted):
        code, codewords, llrs = lightly_corrupted
        result = GallagerBDecoder(code).decode(llrs[0])
        assert result.bits.shape == (code.block_length,)


class TestWeightedBitFlipping:
    def test_noiseless_input_is_fixed_point(self, scaled_code, scaled_encoder, rng):
        info = rng.integers(0, 2, size=scaled_encoder.dimension, dtype=np.uint8)
        codeword = scaled_encoder.encode(info)
        llrs = 3.0 * (1.0 - 2.0 * codeword.astype(np.float64))
        result = WeightedBitFlippingDecoder(scaled_code).decode(llrs)
        assert bool(result.converged)
        assert np.array_equal(result.bits, codeword)

    def test_corrects_few_soft_flagged_errors(self, moderately_corrupted):
        code, codewords, llrs = moderately_corrupted
        result = WeightedBitFlippingDecoder(code, max_iterations=60, flips_per_iteration=1).decode(llrs)
        errors_after = int((result.bits != codewords).sum())
        errors_before = int(((llrs < 0).astype(np.uint8) != codewords).sum())
        assert errors_after < errors_before

    def test_soft_decoder_is_stronger(self, scaled_code, scaled_encoder):
        """Hard-decision decoding gives up coding gain vs the paper's NMS decoder."""
        rng = np.random.default_rng(23)
        info = rng.integers(0, 2, size=(20, scaled_encoder.dimension), dtype=np.uint8)
        codewords = scaled_encoder.encode(info)
        sigma = ebn0_to_sigma(4.5, scaled_code.rate)
        received = BPSKModulator().modulate(codewords) + rng.normal(0, sigma, codewords.shape)
        llrs = channel_llrs(received, sigma)
        soft = NormalizedMinSumDecoder(scaled_code, 18).decode(llrs)
        hard = GallagerBDecoder(scaled_code, 30).decode(llrs)
        assert int((soft.bits != codewords).sum()) <= int((hard.bits != codewords).sum())

    def test_parameter_validation(self, scaled_code):
        with pytest.raises(ValueError):
            WeightedBitFlippingDecoder(scaled_code, max_iterations=0)
        with pytest.raises(ValueError):
            WeightedBitFlippingDecoder(scaled_code, flips_per_iteration=0)

    def test_wrong_length_rejected(self, scaled_code):
        with pytest.raises(ValueError):
            WeightedBitFlippingDecoder(scaled_code).decode(np.zeros(3))
