"""The ``repro lint`` subcommand: exit codes, output formats, baselines."""

import json
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).parents[1]

BAD_SOURCE = "import random\n\n\ndef draw():\n    return random.random()\n"


@pytest.fixture
def bad_tree(tmp_path):
    (tmp_path / "mod.py").write_text(BAD_SOURCE)
    return tmp_path


def test_lint_clean_tree_exits_zero(tmp_path, capsys):
    (tmp_path / "mod.py").write_text("import math\n")
    assert main(["lint", str(tmp_path), "--no-baseline"]) == 0
    assert "0 violation(s)" in capsys.readouterr().out


def test_lint_bad_tree_exits_one(bad_tree, capsys):
    assert main(["lint", str(bad_tree), "--no-baseline"]) == 1
    out = capsys.readouterr().out
    assert "REP102" in out and "mod.py" in out


def test_report_only_never_fails(bad_tree, capsys):
    assert main(["lint", str(bad_tree), "--no-baseline", "--report-only"]) == 0
    out = capsys.readouterr().out
    assert "REP102" in out and "report-only" in out


def test_write_baseline_then_gate_passes(bad_tree, tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert (
        main(
            [
                "lint",
                str(bad_tree),
                "--baseline",
                str(baseline),
                "--write-baseline",
            ]
        )
        == 0
    )
    assert baseline.exists()
    capsys.readouterr()
    assert main(["lint", str(bad_tree), "--baseline", str(baseline)]) == 0
    assert "1 baselined" in capsys.readouterr().out


def test_new_violation_on_top_of_baseline_fails(bad_tree, tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    main(["lint", str(bad_tree), "--baseline", str(baseline), "--write-baseline"])
    (bad_tree / "extra.py").write_text("import numpy as np\nr = np.random.rand()\n")
    capsys.readouterr()
    assert main(["lint", str(bad_tree), "--baseline", str(baseline)]) == 1
    assert "REP101" in capsys.readouterr().out


def test_select_unknown_rule_is_usage_error(bad_tree):
    assert main(["lint", str(bad_tree), "--select", "REP777"]) == 2


def test_missing_path_is_usage_error(tmp_path):
    assert main(["lint", str(tmp_path / "nope"), "--no-baseline"]) == 2


def test_syntax_error_is_usage_error(tmp_path):
    (tmp_path / "broken.py").write_text("def broken(:\n")
    assert main(["lint", str(tmp_path), "--no-baseline"]) == 2


def test_select_filters_rules(bad_tree, capsys):
    assert main(["lint", str(bad_tree), "--no-baseline", "--select", "REP101"]) == 0
    capsys.readouterr()
    assert main(["lint", str(bad_tree), "--no-baseline", "--select", "REP102"]) == 1


def test_json_format_is_machine_readable(bad_tree, capsys):
    assert main(["lint", str(bad_tree), "--no-baseline", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["violations"][0]["rule"] == "REP102"
    assert payload["baselined"] == []


def test_rules_catalog_lists_every_code(capsys):
    assert main(["lint", "--rules"]) == 0
    out = capsys.readouterr().out
    for code in ("REP101", "REP109", "REP201", "REP205"):
        assert code in out


def test_schemas_flag_runs_cross_checker(tmp_path, capsys, monkeypatch):
    (tmp_path / "mod.py").write_text("import math\n")
    monkeypatch.chdir(REPO_ROOT)
    assert main(["lint", str(tmp_path), "--no-baseline", "--schemas"]) == 0
    assert "0 schema finding(s)" in capsys.readouterr().out


def test_default_target_gates_the_real_tree(monkeypatch, capsys):
    """``repro lint`` with no arguments is the CI gate on src/repro."""
    monkeypatch.chdir(REPO_ROOT)
    assert main(["lint", "--schemas"]) == 0
    assert "src/repro" in capsys.readouterr().out
