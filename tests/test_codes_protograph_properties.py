"""Unit tests for repro.codes.protograph and repro.codes.properties."""

import numpy as np
import pytest

from repro.codes.properties import enumerate_codewords, minimum_distance, weight_distribution
from repro.codes.protograph import Protograph
from repro.codes.qc import QCLDPCCode


class TestProtograph:
    def test_ccsds_base_matrix(self):
        proto = Protograph.ccsds_c2()
        assert proto.num_check_types == 2
        assert proto.num_bit_types == 16
        assert (proto.base_matrix == 2).all()
        assert proto.design_rate() == pytest.approx(1 - 2 / 16)

    def test_degrees(self):
        proto = Protograph.ccsds_c2()
        assert proto.check_degrees().tolist() == [32, 32]
        assert proto.bit_degrees().tolist() == [4] * 16

    def test_negative_entries_rejected(self):
        with pytest.raises(ValueError):
            Protograph([[1, -1]])

    def test_lift_random_structure(self):
        proto = Protograph([[2, 1], [1, 2]])
        spec = proto.lift_random(13, rng=3)
        assert spec.circulant_size == 13
        assert spec.block_weights().tolist() == [[2, 1], [1, 2]]

    def test_lift_random_deterministic(self):
        proto = Protograph.ccsds_c2()
        assert proto.lift_random(17, rng=1) == proto.lift_random(17, rng=1)

    def test_lift_rejects_small_circulant(self):
        proto = Protograph([[5]])
        with pytest.raises(ValueError):
            proto.lift_random(3, rng=0)

    def test_lifted_code_has_expected_length(self):
        proto = Protograph.ccsds_c2()
        code = QCLDPCCode(proto.lift_random(11, rng=0))
        assert code.block_length == 11 * 16


class TestProperties:
    def test_hamming_codewords(self, hamming_pcm):
        codewords = enumerate_codewords(hamming_pcm.to_dense())
        assert codewords.shape == (16, 7)
        # All enumerated words satisfy the parity checks.
        assert all(hamming_pcm.is_codeword(word) for word in codewords)

    def test_hamming_minimum_distance(self, hamming_pcm):
        assert minimum_distance(hamming_pcm.to_dense()) == 3

    def test_hamming_weight_distribution(self, hamming_pcm):
        distribution = weight_distribution(hamming_pcm.to_dense())
        # The (7,4) Hamming code: 1 + 7z^3 + 7z^4 + z^7.
        assert distribution == {0: 1, 3: 7, 4: 7, 7: 1}

    def test_repetition_code(self):
        h = np.array([[1, 1, 0], [0, 1, 1]], dtype=np.uint8)
        assert minimum_distance(h) == 3
        assert weight_distribution(h) == {0: 1, 3: 1}

    def test_dimension_limit(self):
        h = np.zeros((1, 25), dtype=np.uint8)
        h[0, 0] = 1
        with pytest.raises(ValueError):
            enumerate_codewords(h)
