"""Integration tests: full encode -> channel -> decode -> architecture chains."""

import numpy as np
import pytest

from repro.channel.awgn import AWGNChannel, ebn0_to_sigma
from repro.channel.llr import channel_llrs
from repro.channel.modulation import BPSKModulator
from repro.codes import ShortenedCode, build_scaled_ccsds_code
from repro.core import CCSDSDecoderIP, scaled_architecture, high_speed_architecture
from repro.decode import (
    LayeredMinSumDecoder,
    MinSumDecoder,
    NormalizedMinSumDecoder,
    SumProductDecoder,
)
from repro.encode import SystematicEncoder
from repro.io.alist import read_alist, write_alist
from repro.io.circulant_table import load_circulant_spec, save_circulant_spec
from repro.codes.qc import QCLDPCCode
from repro.sim import EbN0Sweep, MonteCarloSimulator, SimulationConfig


class TestEndToEndLink:
    """The complete coded link on the scaled CCSDS twin."""

    def test_error_free_at_high_snr(self, scaled_code, scaled_encoder, rng):
        info = rng.integers(0, 2, size=(5, scaled_encoder.dimension), dtype=np.uint8)
        codewords = scaled_encoder.encode(info)
        sigma = ebn0_to_sigma(7.0, scaled_code.rate)
        channel = AWGNChannel(sigma, rng=rng)
        llrs = channel_llrs(channel.transmit(BPSKModulator().modulate(codewords)), sigma)
        result = NormalizedMinSumDecoder(scaled_code, max_iterations=18).decode(llrs)
        assert result.all_converged
        recovered = scaled_encoder.extract_information(np.atleast_2d(result.bits))
        assert np.array_equal(recovered, info)

    def test_shortened_frame_pipeline(self, scaled_code, scaled_encoder, rng):
        """Virtual fill -> transmit -> LLR mapping -> decode -> info recovery."""
        shortened = ShortenedCode.from_encoder(
            scaled_code, scaled_encoder, info_bits=scaled_code.dimension - 12,
            frame_length=scaled_code.block_length - 12 + 4,
        )
        info = rng.integers(0, 2, size=scaled_encoder.dimension, dtype=np.uint8)
        forced = np.isin(
            scaled_encoder.information_positions, shortened.shortened_positions()
        )
        info[forced] = 0
        codeword = scaled_encoder.encode(info)
        frame = shortened.build_frame(shortened.extract_transmitted(codeword))
        sigma = ebn0_to_sigma(6.5, shortened.rate)
        received = BPSKModulator().modulate(frame) + rng.normal(0, sigma, frame.shape)
        base_llrs = shortened.base_llrs_from_frame_llrs(channel_llrs(received, sigma))
        result = NormalizedMinSumDecoder(scaled_code, max_iterations=18).decode(base_llrs)
        assert bool(result.converged)
        assert np.array_equal(result.bits, codeword)

    def test_all_decoders_agree_at_high_snr(self, scaled_code, scaled_encoder, rng):
        info = rng.integers(0, 2, size=scaled_encoder.dimension, dtype=np.uint8)
        codeword = scaled_encoder.encode(info)
        sigma = ebn0_to_sigma(7.5, scaled_code.rate)
        received = BPSKModulator().modulate(codeword) + rng.normal(0, sigma, codeword.shape)
        llrs = channel_llrs(received, sigma)
        decoders = [
            MinSumDecoder(scaled_code, 20),
            NormalizedMinSumDecoder(scaled_code, 20),
            SumProductDecoder(scaled_code, 20),
            LayeredMinSumDecoder(scaled_code, 20),
        ]
        outputs = [decoder.decode(llrs).bits for decoder in decoders]
        for bits in outputs:
            assert np.array_equal(bits, codeword)


class TestPaperHeadlineClaims:
    """Shape-level checks of the paper's evaluation claims on the scaled code."""

    def test_scaled_min_sum_18_matches_plain_50(self):
        """Section 5: scaled min-sum at 18 iterations performs at least as well
        as plain decoding at 50 iterations (same channel realizations)."""
        code = build_scaled_ccsds_code(63)
        config = SimulationConfig(
            max_frames=150, target_frame_errors=150, batch_frames=50, all_zero_codeword=True
        )
        ebn0 = 4.0
        scaled_18 = MonteCarloSimulator(
            code, NormalizedMinSumDecoder(code, 18), config=config, rng=21
        ).run_point(ebn0)
        plain_50 = MonteCarloSimulator(
            code, MinSumDecoder(code, 50), config=config, rng=21
        ).run_point(ebn0)
        assert scaled_18.fer <= plain_50.fer * 1.25 + 1e-9

    def test_architecture_ip_end_to_end(self, scaled_code, scaled_encoder, rng):
        """The functional IP model decodes what the analytical model sizes."""
        params = scaled_architecture(scaled_code.circulant_size)
        ip = CCSDSDecoderIP(scaled_code, params, iterations=18)
        info = rng.integers(0, 2, size=(4, scaled_encoder.dimension), dtype=np.uint8)
        codewords = scaled_encoder.encode(info)
        sigma = ebn0_to_sigma(6.0, scaled_code.rate)
        received = BPSKModulator().modulate(codewords) + rng.normal(0, sigma, codewords.shape)
        result = ip.decode(channel_llrs(received, sigma))
        assert int((result.bits != codewords).sum()) == 0
        assert ip.throughput().throughput_bps > 0
        assert ip.resources().memory_bits > 0

    def test_high_speed_ip_is_eight_times_faster(self, scaled_code):
        low = CCSDSDecoderIP(
            scaled_code, scaled_architecture(scaled_code.circulant_size), iterations=18
        )
        high = CCSDSDecoderIP(
            scaled_code,
            scaled_architecture(scaled_code.circulant_size, base=high_speed_architecture()),
            iterations=18,
        )
        ratio = high.throughput().throughput_bps / low.throughput().throughput_bps
        assert ratio == pytest.approx(8.0)


class TestInteropRoundtrips:
    def test_alist_roundtrip_preserves_decoding(self, scaled_code, tmp_path):
        """A code exported to alist and re-imported decodes identically."""
        path = tmp_path / "code.alist"
        write_alist(scaled_code.parity_check_matrix(), path)
        reloaded_pcm = read_alist(path)
        rng = np.random.default_rng(0)
        llrs = rng.normal(0.5, 1.0, size=scaled_code.block_length)
        original = NormalizedMinSumDecoder(scaled_code, 10).decode(llrs)
        reloaded = NormalizedMinSumDecoder(reloaded_pcm, 10).decode(llrs)
        assert np.array_equal(original.bits, reloaded.bits)

    def test_circulant_table_roundtrip_preserves_code(self, scaled_code, tmp_path):
        path = tmp_path / "spec.json"
        save_circulant_spec(scaled_code.spec, path)
        rebuilt = QCLDPCCode(load_circulant_spec(path))
        assert rebuilt.parity_check_matrix().sparse == scaled_code.parity_check_matrix().sparse


class TestSweepIntegration:
    def test_waterfall_shape(self):
        """BER decreases monotonically with Eb/N0 over a coarse sweep."""
        code = build_scaled_ccsds_code(31)
        config = SimulationConfig(
            max_frames=120, target_frame_errors=40, batch_frames=40, all_zero_codeword=True
        )
        sweep = EbN0Sweep(
            code, lambda: NormalizedMinSumDecoder(code, 18), config=config, rng=13
        )
        curve = sweep.run([2.0, 4.0, 6.0], label="nms")
        ber = curve.ber_values
        assert ber[0] > ber[2]
        assert curve.fer_values[0] > curve.fer_values[2]
