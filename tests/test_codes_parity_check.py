"""Unit tests for repro.codes.parity_check."""

import numpy as np
import pytest

from repro.codes.parity_check import ParityCheckMatrix


class TestDimensions:
    def test_hamming_dimensions(self, hamming_pcm):
        assert hamming_pcm.num_checks == 3
        assert hamming_pcm.block_length == 7
        assert hamming_pcm.num_edges == 12
        assert hamming_pcm.rank == 3
        assert hamming_pcm.dimension == 4
        assert hamming_pcm.rate == pytest.approx(4 / 7)

    def test_design_rate(self, hamming_pcm):
        assert hamming_pcm.design_rate == pytest.approx(4 / 7)

    def test_scaled_code_rank_deficiency(self, scaled_code):
        pcm = scaled_code.parity_check_matrix()
        # Even column weight implies the rows of H sum to zero.
        assert pcm.rank < pcm.num_checks
        assert pcm.dimension == pcm.block_length - pcm.rank


class TestDegrees:
    def test_hamming_degrees(self, hamming_pcm):
        assert hamming_pcm.check_degrees().tolist() == [4, 4, 4]
        assert hamming_pcm.bit_degrees().tolist() == [2, 2, 2, 3, 1, 1, 1]

    def test_regularity_detection(self, hamming_pcm, scaled_code):
        assert not hamming_pcm.is_regular()
        assert scaled_code.parity_check_matrix().is_regular()

    def test_degree_profile(self, scaled_code):
        profile = scaled_code.parity_check_matrix().degree_profile()
        assert profile["check"] == {32: scaled_code.num_checks}
        assert profile["bit"] == {4: scaled_code.block_length}


class TestSyndrome:
    def test_zero_codeword(self, hamming_pcm):
        assert hamming_pcm.is_codeword(np.zeros(7, dtype=np.uint8))

    def test_single_error_detected(self, hamming_pcm):
        word = np.zeros(7, dtype=np.uint8)
        word[2] = 1
        assert not hamming_pcm.is_codeword(word)

    def test_batch_codeword_check(self, hamming_pcm):
        words = np.zeros((3, 7), dtype=np.uint8)
        words[1, 0] = 1
        flags = hamming_pcm.is_codeword(words)
        assert flags.tolist() == [True, False, True]

    def test_syndrome_matches_dense(self, hamming_pcm, rng):
        word = rng.integers(0, 2, size=7, dtype=np.uint8)
        dense = hamming_pcm.to_dense()
        expected = (dense @ word) % 2
        assert np.array_equal(hamming_pcm.syndrome(word), expected)


class TestScatterViews:
    def test_scatter_count(self, scaled_code):
        pcm = scaled_code.parity_check_matrix()
        rows, cols = pcm.scatter()
        assert rows.size == pcm.num_edges
        assert cols.size == pcm.num_edges

    def test_density_grid_totals(self, scaled_code):
        pcm = scaled_code.parity_check_matrix()
        grid = pcm.density_grid(2, 16)
        assert grid.shape == (2, 16)
        assert grid.sum() == pcm.num_edges
        # The CCSDS structure has weight-2 circulants in every block.
        assert (grid == 2 * scaled_code.circulant_size).all()

    def test_density_grid_invalid_bins(self, hamming_pcm):
        with pytest.raises(ValueError):
            hamming_pcm.density_grid(0, 4)
