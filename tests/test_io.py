"""Unit tests for repro.io (alist and circulant-table formats)."""

import numpy as np
import pytest

from repro.codes.qc import CirculantSpec, QCLDPCCode
from repro.io.alist import read_alist, write_alist
from repro.io.circulant_table import (
    load_circulant_spec,
    save_circulant_spec,
    spec_from_dict,
    spec_to_dict,
)


class TestAlist:
    def test_roundtrip_hamming(self, hamming_pcm, tmp_path):
        path = tmp_path / "hamming.alist"
        write_alist(hamming_pcm, path)
        loaded = read_alist(path)
        assert np.array_equal(loaded.to_dense(), hamming_pcm.to_dense())

    def test_roundtrip_qc_code(self, scaled_code, tmp_path):
        pcm = scaled_code.parity_check_matrix()
        path = tmp_path / "qc.alist"
        write_alist(pcm, path)
        loaded = read_alist(path)
        assert loaded.sparse == pcm.sparse

    def test_header_values(self, hamming_pcm, tmp_path):
        path = tmp_path / "h.alist"
        write_alist(hamming_pcm, path)
        first, second = path.read_text().splitlines()[:2]
        assert first == "7 3"
        assert second == "3 4"  # max column degree, max row degree

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "bad.alist"
        path.write_text("4 2\n2 2\n")
        with pytest.raises(ValueError):
            read_alist(path)

    def test_degree_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad2.alist"
        # Declares column degree 2 but lists a single entry.
        path.write_text("2 2\n2 2\n2 1\n2 1\n1 0\n1 0\n1 2\n1 0\n")
        with pytest.raises(ValueError):
            read_alist(path)


class TestCirculantTable:
    def test_dict_roundtrip(self, scaled_code):
        spec = scaled_code.spec
        assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_file_roundtrip(self, scaled_code, tmp_path):
        path = tmp_path / "spec.json"
        save_circulant_spec(scaled_code.spec, path)
        loaded = load_circulant_spec(path)
        assert loaded == scaled_code.spec
        # The loaded spec expands to the same parity-check matrix.
        assert (
            QCLDPCCode(loaded).parity_check_matrix().sparse
            == scaled_code.parity_check_matrix().sparse
        )

    def test_missing_keys_rejected(self):
        with pytest.raises(ValueError):
            spec_from_dict({"circulant_size": 7})

    def test_official_style_table_accepted(self):
        """A hand-written table in the documented schema loads correctly."""
        data = {
            "circulant_size": 11,
            "block_positions": [
                [[0, 3], [1, 5]],
                [[2, 7], [4, 9]],
            ],
        }
        spec = spec_from_dict(data)
        assert isinstance(spec, CirculantSpec)
        assert spec.circulant_size == 11
        assert spec.block_weights().tolist() == [[2, 2], [2, 2]]
