"""Unit tests for repro.sim.statistics, repro.sim.results, repro.sim.reference."""

import numpy as np
import pytest

from repro.sim.reference import shannon_limit_ebn0_db, uncoded_bpsk_ber
from repro.sim.results import SimulationCurve, SimulationPoint
from repro.sim.statistics import ErrorCounter, wilson_interval


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(5, 100)
        assert low < 0.05 < high

    def test_zero_errors(self):
        low, high = wilson_interval(0, 1000)
        assert low == 0.0
        assert high < 0.01

    def test_narrower_with_more_trials(self):
        low_small, high_small = wilson_interval(10, 100)
        low_large, high_large = wilson_interval(100, 1000)
        assert (high_large - low_large) < (high_small - low_small)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 3)


class TestErrorCounter:
    def test_accumulation(self):
        counter = ErrorCounter()
        counter.update(bit_errors=3, frame_errors=1, bits=100, frames=10, iterations=40)
        counter.update(bit_errors=2, frame_errors=0, bits=100, frames=10, iterations=20)
        assert counter.ber == pytest.approx(0.025)
        assert counter.fer == pytest.approx(0.05)
        assert counter.average_iterations == pytest.approx(3.0)

    def test_empty_counter(self):
        counter = ErrorCounter()
        assert counter.ber == 0.0 and counter.fer == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ErrorCounter().update(-1, 0, 10, 1)

    def test_confidence_intervals(self):
        counter = ErrorCounter()
        counter.update(bit_errors=10, frame_errors=2, bits=1000, frames=20)
        low, high = counter.ber_confidence()
        assert low < counter.ber < high

    def test_update_batch_equals_per_frame_updates(self):
        """Vectorized batch accumulation == folding each frame separately."""
        errors = np.array([0, 3, 1, 0, 7])
        converged = np.array([True, True, False, True, True])
        iterations = np.array([0, 4, 8, 1, 8])
        batched = ErrorCounter()
        batched.update_batch(
            errors, converged, iterations, bits_per_frame=100,
            info_bit_errors=5, info_bits=400,
        )
        serial = ErrorCounter()
        for e, c, i in zip(errors, converged, iterations):
            serial.update(
                bit_errors=int(e), frame_errors=int(e > 0), bits=100, frames=1,
                undetected_frame_errors=int(e > 0 and c), iterations=int(i),
            )
        serial.update(0, 0, 0, 0, info_bit_errors=5, info_bits=400)
        assert batched == serial
        assert batched.undetected_frame_errors == 2  # frames 1 and 4

    def test_update_batch_rejects_non_1d(self):
        with pytest.raises(ValueError):
            ErrorCounter().update_batch(
                np.zeros((2, 3)), np.ones(2, dtype=bool), np.zeros(2),
                bits_per_frame=3,
            )


class TestSimulationCurve:
    def _point(self, ebn0, ber, fer=0.1):
        return SimulationPoint(
            ebn0_db=ebn0, ber=ber, fer=fer, bit_errors=int(ber * 1e6),
            frame_errors=10, bits=10**6, frames=100,
        )

    def test_points_kept_sorted(self):
        curve = SimulationCurve("test")
        curve.add(self._point(4.0, 1e-4))
        curve.add(self._point(3.0, 1e-2))
        assert curve.ebn0_values.tolist() == [3.0, 4.0]

    def test_crossing_interpolation(self):
        curve = SimulationCurve("test")
        curve.add(self._point(3.0, 1e-2))
        curve.add(self._point(4.0, 1e-4))
        crossing = curve.ebn0_at_ber(1e-3)
        assert 3.0 < crossing < 4.0

    def test_crossing_not_reached(self):
        curve = SimulationCurve("test")
        curve.add(self._point(3.0, 1e-2))
        curve.add(self._point(4.0, 1e-3))
        assert curve.ebn0_at_ber(1e-8) is None

    def test_coding_gain(self):
        better = SimulationCurve("better")
        worse = SimulationCurve("worse")
        for e, b in [(3.0, 1e-2), (4.0, 1e-5)]:
            better.add(self._point(e, b))
        for e, b in [(3.5, 1e-2), (4.5, 1e-5)]:
            worse.add(self._point(e, b))
        gain = better.coding_gain_over(worse, 1e-4)
        assert gain == pytest.approx(0.5, abs=0.05)

    def test_serialization_roundtrip(self, tmp_path):
        curve = SimulationCurve("nms", metadata={"iterations": 18})
        curve.add(self._point(4.0, 1e-3))
        path = tmp_path / "curve.json"
        curve.save(path)
        loaded = SimulationCurve.load(path)
        assert loaded.label == "nms"
        assert loaded.metadata == {"iterations": 18}
        assert loaded.points[0].ber == pytest.approx(1e-3)

    def test_invalid_target_ber(self):
        with pytest.raises(ValueError):
            SimulationCurve("x").ebn0_at_ber(0.0)

    def test_metadata_with_numpy_values_survives_roundtrip(self, tmp_path):
        """Regression: numpy-typed metadata used to crash save (not JSON-able)."""
        curve = SimulationCurve(
            "nms α=1.25",
            metadata={
                "alpha": np.float64(1.25),
                "iterations": np.int64(18),
                "adaptive": np.bool_(True),
                "grid": np.array([3.0, 4.0]),
                "nested": {"code": {"family": "scaled", "circulant": 31}},
            },
        )
        curve.add(self._point(4.0, 1e-3))
        path = tmp_path / "curve.json"
        curve.save(path)
        loaded = SimulationCurve.load(path)
        assert loaded.label == "nms α=1.25"
        assert loaded.metadata["alpha"] == 1.25
        assert loaded.metadata["iterations"] == 18
        assert loaded.metadata["adaptive"] is True
        assert loaded.metadata["grid"] == [3.0, 4.0]
        assert loaded.metadata["nested"] == {"code": {"family": "scaled", "circulant": 31}}
        # A second round trip is the identity: nothing left to degrade.
        loaded.save(path)
        assert SimulationCurve.load(path).as_dict() == loaded.as_dict()

    def test_from_dict_tolerates_missing_and_unknown_fields(self):
        """Curves from other versions load: extra point keys are ignored,
        missing label/metadata default to empty."""
        data = {
            "points": [
                {
                    "ebn0_db": 4.0,
                    "ber": 1e-3,
                    "fer": 1e-2,
                    "bit_errors": 10,
                    "frame_errors": 2,
                    "bits": 10_000,
                    "frames": 200,
                    "exotic_future_field": 123,
                }
            ]
        }
        curve = SimulationCurve.from_dict(data)
        assert curve.label == ""
        assert curve.metadata == {}
        assert curve.points[0].frames == 200

    def test_completed_ebn0(self):
        curve = SimulationCurve("x")
        curve.add(self._point(3.0, 1e-2))
        curve.add(self._point(4.0, 1e-3))
        assert curve.completed_ebn0() == {3.0, 4.0}


class TestReferenceCurves:
    def test_uncoded_bpsk_known_value(self):
        # At Eb/N0 = 9.6 dB uncoded BPSK is ~1e-5.
        assert uncoded_bpsk_ber(9.6) == pytest.approx(1e-5, rel=0.15)

    def test_uncoded_monotone(self):
        values = uncoded_bpsk_ber(np.array([0.0, 2.0, 4.0, 6.0]))
        assert (np.diff(values) < 0).all()

    def test_shannon_limit_below_operating_point(self):
        # The unconstrained-input limit for rate 0.875 is ~1.3 dB; the
        # paper's decoder operates around 3.5-4.5 dB, comfortably above it.
        limit = shannon_limit_ebn0_db(7136 / 8160)
        assert 1.0 < limit < 2.0
        assert limit < 3.5

    def test_shannon_limit_invalid_rate(self):
        with pytest.raises(ValueError):
            shannon_limit_ebn0_db(1.5)
