"""Unit tests for repro.encode.systematic."""

import numpy as np
import pytest

from repro.codes.parity_check import ParityCheckMatrix
from repro.encode.systematic import SystematicEncoder, as_parity_check_matrix


class TestAsParityCheckMatrix:
    def test_passthrough(self, hamming_pcm):
        assert as_parity_check_matrix(hamming_pcm) is hamming_pcm

    def test_from_code_object(self, scaled_code):
        assert as_parity_check_matrix(scaled_code) is scaled_code.parity_check_matrix()

    def test_from_dense_array(self):
        h = np.array([[1, 1, 0], [0, 1, 1]], dtype=np.uint8)
        pcm = as_parity_check_matrix(h)
        assert isinstance(pcm, ParityCheckMatrix)
        assert pcm.block_length == 3


class TestHammingEncoder:
    def test_dimension(self, hamming_pcm):
        encoder = SystematicEncoder(hamming_pcm)
        assert encoder.dimension == 4
        assert encoder.block_length == 7

    def test_all_codewords_valid(self, hamming_pcm):
        encoder = SystematicEncoder(hamming_pcm)
        for value in range(16):
            info = np.array([(value >> i) & 1 for i in range(4)], dtype=np.uint8)
            assert hamming_pcm.is_codeword(encoder.encode(info))

    def test_encoding_is_linear(self, hamming_pcm, rng):
        encoder = SystematicEncoder(hamming_pcm)
        a = rng.integers(0, 2, size=4, dtype=np.uint8)
        b = rng.integers(0, 2, size=4, dtype=np.uint8)
        assert np.array_equal(
            encoder.encode(a ^ b), encoder.encode(a) ^ encoder.encode(b)
        )

    def test_information_recoverable(self, hamming_pcm, rng):
        encoder = SystematicEncoder(hamming_pcm)
        info = rng.integers(0, 2, size=4, dtype=np.uint8)
        assert np.array_equal(encoder.extract_information(encoder.encode(info)), info)

    def test_distinct_info_gives_distinct_codewords(self, hamming_pcm):
        encoder = SystematicEncoder(hamming_pcm)
        words = {tuple(encoder.encode(np.array([(v >> i) & 1 for i in range(4)], dtype=np.uint8))) for v in range(16)}
        assert len(words) == 16


class TestScaledCodeEncoder:
    def test_dimension_matches_code(self, scaled_code, scaled_encoder):
        assert scaled_encoder.dimension == scaled_code.dimension

    def test_batch_encoding_valid(self, scaled_code, scaled_encoder, rng):
        info = rng.integers(0, 2, size=(10, scaled_encoder.dimension), dtype=np.uint8)
        codewords = scaled_encoder.encode(info)
        assert codewords.shape == (10, scaled_code.block_length)
        assert bool(np.all(scaled_code.is_codeword(codewords)))

    def test_positions_partition_codeword(self, scaled_encoder):
        info = set(scaled_encoder.information_positions.tolist())
        parity = set(scaled_encoder.parity_positions.tolist())
        assert info.isdisjoint(parity)
        assert len(info) + len(parity) == scaled_encoder.block_length

    def test_wrong_info_length(self, scaled_encoder):
        with pytest.raises(ValueError):
            scaled_encoder.encode(np.zeros(scaled_encoder.dimension + 1, dtype=np.uint8))

    def test_non_binary_rejected(self, scaled_encoder):
        with pytest.raises(ValueError):
            scaled_encoder.encode(np.full(scaled_encoder.dimension, 2))


class TestEncoderDiskCache:
    def test_cache_file_written_and_loaded(self, hamming_pcm, tmp_path, monkeypatch):
        cold = SystematicEncoder(hamming_pcm, cache_dir=tmp_path)
        cached = list(tmp_path.glob("*.npz"))
        assert len(cached) == 1
        # A warm build must not run Gaussian elimination at all.
        import repro.encode.systematic as module

        def boom(*args, **kwargs):
            raise AssertionError("row reduction ran despite a warm cache")

        monkeypatch.setattr(module, "gf2_row_reduce", boom)
        warm = SystematicEncoder(hamming_pcm, cache_dir=tmp_path)
        info = np.array([[1, 0, 1, 1], [0, 1, 1, 0]], dtype=np.uint8)
        assert np.array_equal(cold.encode(info), warm.encode(info))
        assert np.array_equal(
            cold.information_positions, warm.information_positions
        )

    def test_distinct_matrices_get_distinct_entries(self, hamming_pcm, scaled_code, tmp_path):
        SystematicEncoder(hamming_pcm, cache_dir=tmp_path)
        SystematicEncoder(scaled_code, cache_dir=tmp_path)
        assert len(list(tmp_path.glob("*.npz"))) == 2

    def test_corrupt_cache_falls_back_to_recompute(self, hamming_pcm, tmp_path):
        reference = SystematicEncoder(hamming_pcm, cache_dir=None)
        SystematicEncoder(hamming_pcm, cache_dir=tmp_path)
        (cache_file,) = tmp_path.glob("*.npz")
        cache_file.write_bytes(b"not an npz archive")
        recovered = SystematicEncoder(hamming_pcm, cache_dir=tmp_path)
        info = np.array([1, 0, 1, 1], dtype=np.uint8)
        assert np.array_equal(reference.encode(info), recovered.encode(info))

    def test_cache_dir_none_writes_nothing(self, hamming_pcm, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ENCODER_CACHE", str(tmp_path / "unused"))
        SystematicEncoder(hamming_pcm, cache_dir=None)
        assert not (tmp_path / "unused").exists()

    def test_env_variable_controls_default(self, hamming_pcm, tmp_path, monkeypatch):
        from repro.encode.systematic import default_encoder_cache_dir

        monkeypatch.setenv("REPRO_ENCODER_CACHE", "off")
        assert default_encoder_cache_dir() is None
        monkeypatch.setenv("REPRO_ENCODER_CACHE", str(tmp_path / "cachedir"))
        assert default_encoder_cache_dir() == tmp_path / "cachedir"
        SystematicEncoder(hamming_pcm)
        assert len(list((tmp_path / "cachedir").glob("*.npz"))) == 1

    def test_fingerprint_distinguishes_shapes_and_content(self, hamming_pcm):
        from repro.encode.systematic import parity_check_fingerprint

        other = ParityCheckMatrix(
            np.array([[1, 1, 0, 1, 1, 0, 1], [1, 0, 1, 1, 0, 1, 0],
                      [0, 1, 1, 1, 0, 0, 1]], dtype=np.uint8)
        )
        assert parity_check_fingerprint(hamming_pcm) != parity_check_fingerprint(other)
        assert parity_check_fingerprint(hamming_pcm) == parity_check_fingerprint(hamming_pcm)
