"""Unit tests for repro.codes.construction."""

import pytest

from repro.codes.construction import (
    build_ccsds_like_spec,
    build_random_regular_spec,
    count_four_cycles,
    spec_has_four_cycle,
)
from repro.codes.qc import CirculantSpec, QCLDPCCode
from repro.codes.tanner import TannerGraph


class TestFourCycleDetection:
    def test_known_four_cycle(self):
        # Two weight-1 blocks per row with identical offsets in both rows:
        # difference sets collide -> 4-cycle.
        spec = CirculantSpec(5, (((0,), (1,)), ((0,), (1,))))
        assert spec_has_four_cycle(spec)

    def test_known_clean_spec(self):
        # Array-code style offsets (prime size) are 4-cycle free.
        spec = CirculantSpec(7, (((0,), (0,)), ((0,), (1,))))
        assert not spec_has_four_cycle(spec)

    def test_within_block_repeat(self):
        # Same difference repeated inside one weight-3 block (0-2 == 2-4).
        spec = CirculantSpec(9, (((0, 2, 4),),))
        assert spec_has_four_cycle(spec)

    def test_detection_matches_graph_search(self):
        clean = build_ccsds_like_spec(circulant_size=63, col_blocks=6, rng=3)
        graph = TannerGraph(QCLDPCCode(clean).parity_check_matrix())
        assert spec_has_four_cycle(clean) == graph.has_four_cycles()

    def test_count_zero_for_clean(self):
        spec = build_ccsds_like_spec(circulant_size=127, col_blocks=8, rng=0)
        assert count_four_cycles(spec) == 0


class TestCcsdsLikeConstruction:
    def test_structure(self):
        spec = build_ccsds_like_spec(circulant_size=63, rng=1)
        assert spec.row_blocks == 2
        assert spec.col_blocks == 16
        assert spec.circulant_size == 63
        assert (spec.block_weights() == 2).all()

    def test_four_cycle_free_at_adequate_size(self):
        spec = build_ccsds_like_spec(circulant_size=127, rng=5)
        assert not spec_has_four_cycle(spec)

    def test_deterministic_for_seed(self):
        a = build_ccsds_like_spec(circulant_size=63, rng=9)
        b = build_ccsds_like_spec(circulant_size=63, rng=9)
        assert a == b

    def test_different_seeds_differ(self):
        a = build_ccsds_like_spec(circulant_size=63, rng=1)
        b = build_ccsds_like_spec(circulant_size=63, rng=2)
        assert a != b

    def test_best_effort_at_tiny_size(self):
        # 31 is too small for a strictly 4-cycle-free code of this density;
        # the builder still returns a structurally correct spec.
        spec = build_ccsds_like_spec(circulant_size=31, rng=4)
        assert (spec.block_weights() == 2).all()

    def test_strict_mode_raises_at_tiny_size(self):
        with pytest.raises(RuntimeError):
            build_ccsds_like_spec(
                circulant_size=11, rng=4, require_girth_6=True, max_attempts_per_column=50
            )

    def test_invalid_weight(self):
        with pytest.raises(ValueError):
            build_ccsds_like_spec(circulant_size=7, block_weight=0)
        with pytest.raises(ValueError):
            build_ccsds_like_spec(circulant_size=3, block_weight=5)


class TestRandomRegularSpec:
    def test_structure(self):
        spec = build_random_regular_spec(17, 3, 6, block_weight=2, rng=0)
        assert spec.row_blocks == 3
        assert spec.col_blocks == 6
        assert (spec.block_weights() == 2).all()

    def test_determinism(self):
        assert build_random_regular_spec(17, 2, 4, rng=5) == build_random_regular_spec(
            17, 2, 4, rng=5
        )
