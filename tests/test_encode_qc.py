"""Unit tests for repro.encode.qc_encoder (circulant shift-register encoder)."""

import numpy as np
import pytest

from repro.codes.qc import CirculantSpec, QCLDPCCode
from repro.encode.qc_encoder import QCCirculantEncoder, derive_circulant_generator
from repro.encode.systematic import SystematicEncoder


@pytest.fixture(scope="module")
def invertible_qc_code():
    """A small QC code whose parity block columns are invertible circulants.

    Odd-weight circulants are used for the parity part so that the block
    matrix can be inverted over the circulant ring (even-weight circulants
    such as the CCSDS ones are never invertible).
    """
    spec = CirculantSpec(
        7,
        (
            ((0, 2), (1,), (0, 1, 2), ()),
            ((1, 5), (3,), (1,), (0, 1, 2)),
        ),
    )
    return QCLDPCCode(spec)


class TestDeriveGenerator:
    def test_generator_shape(self, invertible_qc_code):
        generator = derive_circulant_generator(invertible_qc_code)
        spec = invertible_qc_code.spec
        assert len(generator) == spec.col_blocks - spec.row_blocks
        assert all(len(row) == spec.row_blocks for row in generator)

    def test_singular_parity_block_raises(self, scaled_code):
        # The CCSDS weight-2 circulants are never invertible.
        with pytest.raises(ValueError):
            derive_circulant_generator(scaled_code)

    def test_rejects_non_square_parity_part(self, invertible_qc_code):
        with pytest.raises(ValueError):
            derive_circulant_generator(invertible_qc_code, parity_block_columns=3)


class TestQCCirculantEncoder:
    def test_codewords_satisfy_parity_checks(self, invertible_qc_code, rng):
        encoder = QCCirculantEncoder(invertible_qc_code)
        info = rng.integers(0, 2, size=(20, encoder.dimension), dtype=np.uint8)
        codewords = encoder.encode(info)
        assert codewords.shape == (20, invertible_qc_code.block_length)
        assert bool(np.all(invertible_qc_code.is_codeword(codewords)))

    def test_systematic_prefix(self, invertible_qc_code, rng):
        encoder = QCCirculantEncoder(invertible_qc_code)
        info = rng.integers(0, 2, size=encoder.dimension, dtype=np.uint8)
        codeword = encoder.encode(info)
        assert np.array_equal(codeword[: encoder.dimension], info)

    def test_linear(self, invertible_qc_code, rng):
        encoder = QCCirculantEncoder(invertible_qc_code)
        a = rng.integers(0, 2, size=encoder.dimension, dtype=np.uint8)
        b = rng.integers(0, 2, size=encoder.dimension, dtype=np.uint8)
        assert np.array_equal(encoder.encode(a ^ b), encoder.encode(a) ^ encoder.encode(b))

    def test_agrees_with_dense_encoder_on_codeword_set(self, invertible_qc_code, rng):
        """Both encoders generate (possibly different) codewords of the same code."""
        qc_encoder = QCCirculantEncoder(invertible_qc_code)
        dense_encoder = SystematicEncoder(invertible_qc_code)
        # Dimensions may differ if H is rank deficient; both must emit valid codewords.
        info = rng.integers(0, 2, size=qc_encoder.dimension, dtype=np.uint8)
        assert invertible_qc_code.is_codeword(qc_encoder.encode(info))
        info2 = rng.integers(0, 2, size=dense_encoder.dimension, dtype=np.uint8)
        assert invertible_qc_code.is_codeword(dense_encoder.encode(info2))

    def test_wrong_length_rejected(self, invertible_qc_code):
        encoder = QCCirculantEncoder(invertible_qc_code)
        with pytest.raises(ValueError):
            encoder.encode(np.zeros(encoder.dimension + 1, dtype=np.uint8))
