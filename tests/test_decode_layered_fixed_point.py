"""Unit tests for the layered and fixed-point decoders."""

import numpy as np
import pytest

from repro.channel.awgn import ebn0_to_sigma
from repro.channel.llr import channel_llrs
from repro.channel.modulation import BPSKModulator
from repro.channel.quantize import FixedPointFormat
from repro.decode import (
    LayeredMinSumDecoder,
    NormalizedMinSumDecoder,
    QuantizedMinSumDecoder,
)


@pytest.fixture(scope="module")
def noisy_frames(request):
    code = request.getfixturevalue("scaled_code")
    encoder = request.getfixturevalue("scaled_encoder")
    rng = np.random.default_rng(99)
    info = rng.integers(0, 2, size=(10, encoder.dimension), dtype=np.uint8)
    codewords = encoder.encode(info)
    sigma = ebn0_to_sigma(5.0, code.rate)
    received = BPSKModulator().modulate(codewords) + rng.normal(0, sigma, size=(10, code.block_length))
    return codewords, channel_llrs(received, sigma)


class TestLayeredDecoder:
    def test_noiseless_exact(self, scaled_code, scaled_encoder, rng):
        info = rng.integers(0, 2, size=scaled_encoder.dimension, dtype=np.uint8)
        codeword = scaled_encoder.encode(info)
        llrs = 8.0 * (1.0 - 2.0 * codeword.astype(np.float64))
        result = LayeredMinSumDecoder(scaled_code, max_iterations=5).decode(llrs)
        assert bool(result.converged)
        assert np.array_equal(result.bits, codeword)

    def test_corrects_moderate_noise(self, scaled_code, noisy_frames):
        codewords, llrs = noisy_frames
        result = LayeredMinSumDecoder(scaled_code, max_iterations=20).decode(llrs)
        assert int((result.bits != codewords).sum()) / codewords.size < 0.01

    def test_converges_at_least_as_fast_as_flooding(self, scaled_code, noisy_frames):
        """The layered schedule propagates information faster per iteration."""
        codewords, llrs = noisy_frames
        flooding = NormalizedMinSumDecoder(scaled_code, max_iterations=30).decode(llrs)
        layered = LayeredMinSumDecoder(scaled_code, max_iterations=30).decode(llrs)
        assert layered.average_iterations <= flooding.average_iterations + 0.5

    def test_number_of_layers_default(self, scaled_code):
        decoder = LayeredMinSumDecoder(scaled_code)
        assert decoder.num_layers == scaled_code.spec.row_blocks

    def test_explicit_layers(self, scaled_code, noisy_frames):
        codewords, llrs = noisy_frames
        result = LayeredMinSumDecoder(scaled_code, max_iterations=20, num_layers=4).decode(llrs)
        assert int((result.bits != codewords).sum()) / codewords.size < 0.01

    def test_parameter_validation(self, scaled_code):
        with pytest.raises(ValueError):
            LayeredMinSumDecoder(scaled_code, max_iterations=0)
        with pytest.raises(ValueError):
            LayeredMinSumDecoder(scaled_code, alpha=0.5)

    def test_wrong_length_rejected(self, scaled_code):
        with pytest.raises(ValueError):
            LayeredMinSumDecoder(scaled_code).decode(np.zeros(5))

    def test_degree_one_check_does_not_poison_posterior(self):
        """Regression: a degree-1 check (e.g. after puncturing/shortening) used
        to emit an infinite extrinsic magnitude in the layered schedule."""
        from repro.codes.parity_check import ParityCheckMatrix

        h = np.array(
            [
                [1, 1, 0, 1, 1, 0, 0],
                [1, 0, 1, 1, 0, 1, 0],
                [0, 1, 1, 1, 0, 0, 1],
                [0, 0, 0, 0, 0, 0, 1],  # degree-1 check
            ],
            dtype=np.uint8,
        )
        decoder = LayeredMinSumDecoder(ParityCheckMatrix(h), max_iterations=5, num_layers=2)
        rng = np.random.default_rng(0)
        result = decoder.decode(rng.normal(2.0, 1.0, size=(4, 7)))
        assert np.isfinite(result.posterior_llrs).all()
        # A clean all-zero codeword still decodes exactly.
        clean = decoder.decode(np.full(7, 5.0))
        assert bool(clean.converged)
        assert not clean.bits.any()

    def test_degree_one_check_matches_flooding_decoder(self):
        """The layered and flooding schedules agree on degree-1 handling.

        With one layer and one iteration the layered update degenerates to a
        flooding iteration (the posterior starts at the channel LLRs), so the
        posteriors must match exactly — including the zeroed extrinsic of the
        degree-1 check.
        """
        from repro.codes.parity_check import ParityCheckMatrix

        h = np.array(
            [
                [1, 1, 0, 1, 1, 0, 0],
                [1, 0, 1, 1, 0, 1, 0],
                [0, 1, 1, 1, 0, 0, 1],
                [0, 0, 0, 1, 0, 0, 0],  # degree-1 check on an interior bit
            ],
            dtype=np.uint8,
        )
        pcm = ParityCheckMatrix(h)
        rng = np.random.default_rng(3)
        llrs = rng.normal(1.0, 2.0, size=(8, 7))
        layered = LayeredMinSumDecoder(pcm, max_iterations=1, num_layers=1).decode(llrs)
        flooding = NormalizedMinSumDecoder(pcm, max_iterations=1).decode(llrs)
        assert np.isfinite(layered.posterior_llrs).all()
        np.testing.assert_allclose(layered.posterior_llrs, flooding.posterior_llrs)


class TestQuantizedDecoder:
    def test_noiseless_exact(self, scaled_code, scaled_encoder, rng):
        info = rng.integers(0, 2, size=scaled_encoder.dimension, dtype=np.uint8)
        codeword = scaled_encoder.encode(info)
        llrs = 4.0 * (1.0 - 2.0 * codeword.astype(np.float64))
        result = QuantizedMinSumDecoder(scaled_code, max_iterations=5).decode(llrs)
        assert bool(result.converged)
        assert np.array_equal(result.bits, codeword)

    def test_corrects_moderate_noise(self, scaled_code, noisy_frames):
        codewords, llrs = noisy_frames
        result = QuantizedMinSumDecoder(scaled_code, max_iterations=20).decode(llrs)
        assert int((result.bits != codewords).sum()) / codewords.size < 0.02

    def test_posterior_on_quantized_grid(self, scaled_code, noisy_frames):
        """The channel values seen by the decoder are quantized; messages stay
        on the grid, so the posterior is a sum of grid values."""
        _, llrs = noisy_frames
        fmt = FixedPointFormat(total_bits=6, fractional_bits=2)
        decoder = QuantizedMinSumDecoder(scaled_code, max_iterations=5, message_format=fmt)
        result = decoder.decode(llrs[:2])
        scaled = np.asarray(result.posterior_llrs) / fmt.step
        assert np.allclose(scaled, np.round(scaled), atol=1e-9)

    def test_coarser_quantization_degrades_or_matches(self, scaled_code, noisy_frames):
        codewords, llrs = noisy_frames
        fine = QuantizedMinSumDecoder(
            scaled_code, max_iterations=15, message_format=FixedPointFormat(8, 3)
        ).decode(llrs)
        coarse = QuantizedMinSumDecoder(
            scaled_code, max_iterations=15, message_format=FixedPointFormat(3, 0)
        ).decode(llrs)
        fine_errors = int((fine.bits != codewords).sum())
        coarse_errors = int((coarse.bits != codewords).sum())
        assert fine_errors <= coarse_errors

    def test_alpha_validation(self, scaled_code):
        with pytest.raises(ValueError):
            QuantizedMinSumDecoder(scaled_code, alpha=0.8)

    def test_channel_format_defaults_to_message_format(self, scaled_code):
        fmt = FixedPointFormat(5, 1)
        decoder = QuantizedMinSumDecoder(scaled_code, message_format=fmt)
        assert decoder.channel_format == fmt
