"""Shared fixtures for the test suite.

Fixtures build the *scaled twin* of the CCSDS code (identical 2 x 16
weight-2 block structure, smaller circulants) so that the whole suite runs in
seconds; the handful of tests that exercise the full 8176-bit code are marked
``slow`` and enabled with ``-m slow`` or the ``REPRO_FULL_SCALE`` environment
variable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codes import build_scaled_ccsds_code
from repro.codes.parity_check import ParityCheckMatrix
from repro.encode import SystematicEncoder


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: tests that exercise the full-size CCSDS code")


@pytest.fixture(scope="session")
def scaled_code():
    """Scaled CCSDS-like QC code (2 x 16 array of 31 x 31 weight-2 circulants)."""
    return build_scaled_ccsds_code(31)


@pytest.fixture(scope="session")
def scaled_code_63():
    """Larger scaled code (63-circulants) for tests that need a cleaner graph."""
    return build_scaled_ccsds_code(63)


@pytest.fixture(scope="session")
def scaled_encoder(scaled_code):
    """Systematic encoder of the scaled code (expensive to build, so shared)."""
    return SystematicEncoder(scaled_code)


@pytest.fixture(scope="session")
def hamming_pcm():
    """The (7, 4) Hamming code parity-check matrix — small, exactly analyzable."""
    h = np.array(
        [
            [1, 1, 0, 1, 1, 0, 0],
            [1, 0, 1, 1, 0, 1, 0],
            [0, 1, 1, 1, 0, 0, 1],
        ],
        dtype=np.uint8,
    )
    return ParityCheckMatrix(h)


@pytest.fixture
def rng():
    """Deterministic random generator for individual tests."""
    return np.random.default_rng(1234)
