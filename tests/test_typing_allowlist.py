"""Annotation-completeness audit for the mypy strict allowlist.

CI runs the real gate (``mypy --config-file mypy.ini src/repro``); mypy is
not vendored in the runtime image, so this test keeps a local, dependency-
free floor under the newly promoted modules: every function and method must
carry complete parameter and return annotations.  It cannot replace mypy's
type *checking*, but it catches the regression that actually happens in
practice — an unannotated def slipping into a promoted module — without
waiting for CI.
"""

import ast
import configparser
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).parents[1]

#: Modules promoted into mypy.ini's strict allowlist by the flow-analysis
#: PR.  (The audit is kept to these rather than parsing every allowlist
#: glob so it stays a cheap, targeted regression net.)
PROMOTED = sorted(
    [
        *(REPO_ROOT / "src" / "repro" / "fabric").glob("*.py"),
        REPO_ROOT / "src" / "repro" / "decode" / "graph.py",
        REPO_ROOT / "src" / "repro" / "decode" / "batched.py",
    ]
)


def test_mypy_ini_promotes_the_modules():
    config = configparser.ConfigParser()
    config.read(REPO_ROOT / "mypy.ini")
    for section in (
        "mypy-repro.fabric,repro.fabric.*",
        "mypy-repro.decode.graph,repro.decode.batched",
    ):
        assert config.has_section(section), section
        assert config.get(section, "ignore_errors") == "False"


def _missing_annotations(path):
    tree = ast.parse(path.read_text(encoding="utf-8"))
    missing = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.annotation is None and arg.arg not in ("self", "cls"):
                missing.append(f"{node.name}:{node.lineno} param {arg.arg}")
        for star in (args.vararg, args.kwarg):
            if star is not None and star.annotation is None:
                missing.append(f"{node.name}:{node.lineno} *{star.arg}")
        if node.returns is None:
            missing.append(f"{node.name}:{node.lineno} return")
    return missing


@pytest.mark.parametrize(
    "path", PROMOTED, ids=lambda p: p.relative_to(REPO_ROOT).as_posix()
)
def test_promoted_module_is_fully_annotated(path):
    missing = _missing_annotations(path)
    assert missing == [], "\n".join(missing)
