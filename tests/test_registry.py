"""Tests for the pluggable component registry (repro.registry)."""

import pytest

from repro.cli import main
from repro.registry import (
    KINDS,
    REGISTRY,
    ComponentRegistry,
    DuplicateComponentError,
    Param,
    RegistryError,
    UnknownComponentError,
    component_names,
    get_component,
    iter_components,
    register_channel,
    temporary_component,
)


class TestRegistryCore:
    def test_builtin_names_are_registered(self):
        assert set(component_names("code")) >= {"ccsds-c2", "scaled", "deepspace"}
        assert set(component_names("decoder")) >= {
            "nms", "min-sum", "offset", "sum-product", "quantized", "layered",
            "gallager-b", "wbf",
        }
        assert set(component_names("channel")) >= {"awgn", "bsc", "rayleigh"}
        assert "bpsk" in component_names("modulator")

    def test_unknown_name_lists_valid_choices(self):
        with pytest.raises(UnknownComponentError) as excinfo:
            get_component("channel", "carrier-pigeon")
        message = str(excinfo.value)
        for name in component_names("channel"):
            assert name in message
        assert "choose from" in message

    def test_unknown_kind_rejected(self):
        registry = ComponentRegistry()
        with pytest.raises(RegistryError, match="unknown component kind"):
            registry.names("decoders")  # plural typo
        with pytest.raises(RegistryError, match=str(KINDS[0])):
            registry.get("nope", "x")

    def test_duplicate_registration_raises(self):
        registry = ComponentRegistry()
        registry.register("channel", "dup")(lambda: None)
        with pytest.raises(DuplicateComponentError, match="already registered"):
            registry.register("channel", "dup")(lambda: None)
        # ...including against the global registry's built-ins.
        with pytest.raises(DuplicateComponentError):
            register_channel("awgn")(lambda: None)

    def test_unregister_then_reregister(self):
        registry = ComponentRegistry()
        registry.register("modulator", "m")(lambda: "one")
        registry.unregister("modulator", "m")
        assert ("modulator", "m") not in registry
        registry.register("modulator", "m")(lambda: "two")
        assert registry.get("modulator", "m").build() == "two"
        with pytest.raises(UnknownComponentError):
            registry.unregister("modulator", "gone")

    def test_temporary_component_cleans_up_even_on_error(self):
        with pytest.raises(RuntimeError):
            with temporary_component("modulator", "tmp-mod", lambda: None):
                assert ("modulator", "tmp-mod") in REGISTRY
                raise RuntimeError("boom")
        assert ("modulator", "tmp-mod") not in REGISTRY

    def test_summary_defaults_to_docstring_first_line(self):
        registry = ComponentRegistry()

        @registry.register("channel", "documented")
        def build():
            """First line wins.

            Not this one.
            """

        assert registry.get("channel", "documented").summary == "First line wins."

    def test_iter_components_covers_all_kinds_in_order(self):
        kinds = [component.kind for component in iter_components()]
        assert kinds == sorted(kinds, key=KINDS.index)
        channel_only = list(iter_components("channel"))
        assert {component.kind for component in channel_only} == {"channel"}


class TestParamSchema:
    def test_unknown_parameter_listed_with_valid_ones(self):
        component = get_component("decoder", "nms")
        with pytest.raises(RegistryError, match="valid parameters: alpha"):
            component.validate({"allpha": 1.25})

    def test_required_parameter_enforced(self):
        component = get_component("code", "scaled")
        with pytest.raises(RegistryError, match="circulant"):
            component.validate({})
        component.validate({"circulant": 31})  # does not raise

    def test_choices_enforced(self):
        component = get_component("code", "deepspace")
        with pytest.raises(RegistryError, match="must be one of"):
            component.validate({"rate": "9/10"})

    def test_open_schema_accepts_anything(self):
        registry = ComponentRegistry()
        registry.register("channel", "open")(lambda **kw: kw)
        registry.get("channel", "open").validate({"anything": 1, "goes": 2})

    def test_param_signature_and_dict_forms(self):
        param = Param("rate", "str", required=True, choices=("1/2", "2/3"), doc="d")
        assert param.signature() == "rate*"
        assert Param("alpha", "float", default=1.25).signature() == "alpha=1.25"
        assert param.as_dict() == {
            "name": "rate", "type": "str", "required": True,
            "choices": ["1/2", "2/3"], "doc": "d",
        }
        with pytest.raises(RegistryError, match="identifier"):
            Param("not a name")


class TestThirdPartyEndToEnd:
    """A component registered via the public decorator works through a campaign."""

    def test_custom_channel_through_campaign_run(self, tmp_path):
        import numpy as np

        from repro.sim import SimulationConfig
        from repro.sim.campaign import (
            CampaignScheduler,
            CampaignSpec,
            ChannelSpec,
            CodeSpec,
            DecoderSpec,
            ExperimentSpec,
            ResultStore,
        )

        class ScaledAWGN:
            """AWGN whose LLRs are scaled by a registered gain parameter."""

            def __init__(self, gain: float = 1.0):
                self.gain = float(gain)

            def llrs(self, symbols, sigma, rng, *, amplitude=1.0):
                arr = np.asarray(symbols, dtype=np.float64)
                received = arr + rng.normal(0.0, sigma, size=arr.shape)
                return self.gain * (2.0 * amplitude / sigma**2) * received

        with temporary_component(
            "channel", "test-scaled-awgn", ScaledAWGN,
            params=[Param("gain", "float", default=1.0)],
        ):
            spec = CampaignSpec(
                name="third-party",
                seed=3,
                ebn0=(2.0, 4.0),
                config=SimulationConfig(
                    max_frames=20, target_frame_errors=4, batch_frames=10,
                    all_zero_codeword=True,
                ),
                experiments=[
                    ExperimentSpec(
                        label="custom",
                        code=CodeSpec(family="scaled", circulant=31),
                        decoder=DecoderSpec("nms", 8),
                        channel=ChannelSpec(
                            kind="test-scaled-awgn", params={"gain": 0.5}
                        ),
                    ),
                ],
            )
            # JSON round-trip keeps the third-party name and params.
            restored = CampaignSpec.from_dict(spec.as_dict())
            assert restored.experiments[0].channel.kind == "test-scaled-awgn"
            serial = CampaignScheduler(
                spec, ResultStore.create(tmp_path / "serial", spec), workers=None
            ).run()
            pooled = CampaignScheduler(
                spec, ResultStore.create(tmp_path / "pooled", spec), workers=2
            ).run()
            assert serial["custom"].points == pooled["custom"].points
            metadata = ResultStore.open(tmp_path / "serial").curve("custom").metadata
            assert metadata["channel"] == {
                "kind": "test-scaled-awgn", "params": {"gain": 0.5}
            }

    def test_custom_decoder_spec_builds_and_validates(self, scaled_code):
        from repro.decode import NormalizedMinSumDecoder
        from repro.sim.campaign import DecoderSpec

        def build(code, max_iterations=18, *, alpha=1.25):
            return NormalizedMinSumDecoder(
                code, max_iterations=max_iterations, alpha=alpha
            )

        with temporary_component(
            "decoder", "test-nms-wrap", build,
            params=[Param("alpha", "float", default=1.25)],
        ):
            spec = DecoderSpec("test-nms-wrap", 7, params={"alpha": 1.5})
            decoder = spec.build(scaled_code)
            assert decoder.max_iterations == 7
            assert decoder.alpha == 1.5
            with pytest.raises(ValueError, match="valid parameters"):
                DecoderSpec("test-nms-wrap", 7, params={"aalpha": 1.5})
        # Outside the with-block the name is gone from spec validation too.
        with pytest.raises(ValueError, match="test-nms-wrap"):
            DecoderSpec("test-nms-wrap", 7)


class TestComponentsCLI:
    def test_list_shows_every_kind_and_name(self, capsys):
        assert main(["components", "list"]) == 0
        out = capsys.readouterr().out
        for kind in KINDS:
            assert kind in out
            for name in component_names(kind):
                assert name in out

    def test_list_kind_filter(self, capsys):
        assert main(["components", "list", "--kind", "channel"]) == 0
        out = capsys.readouterr().out
        assert "rayleigh" in out
        assert "nms" not in out

    def test_describe_shows_schema(self, capsys):
        assert main(["components", "describe", "decoder", "quantized"]) == 0
        out = capsys.readouterr().out
        assert "message_format" in out
        assert "fixed-point" in out.lower() or "format" in out

    def test_describe_unknown_exits_2_with_choices(self, capsys):
        assert main(["components", "describe", "channel", "nope"]) == 2
        err = capsys.readouterr().err
        assert "choose from" in err
        assert "awgn" in err


class TestBuiltinLoading:
    def test_failed_builtin_import_is_retried_not_cached(self, monkeypatch):
        """A failed builtin import must re-raise on the next lookup instead of
        leaving a silently half-populated registry for the process."""
        import repro.registry as registry_module

        monkeypatch.setattr(registry_module, "_builtins_loaded", False)
        monkeypatch.setattr(
            registry_module, "_BUILTIN_MODULES", ("repro.no_such_builtin_module",)
        )
        with pytest.raises(ModuleNotFoundError):
            component_names("channel")
        # The failure was not cached as success...
        assert registry_module._builtins_loaded is False
        with pytest.raises(ModuleNotFoundError):
            component_names("channel")
        # ...and once the modules import again, lookups recover (monkeypatch
        # restores the real module list; the registry itself kept its state).
        monkeypatch.undo()
        assert "awgn" in component_names("channel")
