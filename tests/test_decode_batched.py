"""Differential test battery: batched decoders vs their serial references.

Every kind in :data:`repro.decode.SERIAL_EQUIVALENTS` must be bit-identical
to the serial decoder it shadows — hard decisions, posterior LLRs,
iteration counts and syndrome (converged) flags — for any batch size,
any stopping rule and any split of the frames into batches.  The serial
side of each comparison is a genuine per-frame ``decode`` loop, so the
battery pins the whole chain: serial single-frame == serial full-array
== compacted batched.

``REPRO_BATCHED_TEST_BATCH`` scales the large-batch test (CI runs a
dedicated leg at 4096).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.channel.awgn import ebn0_to_sigma
from repro.channel.llr import channel_llrs
from repro.channel.modulation import BPSKModulator
from repro.decode import (
    SERIAL_EQUIVALENTS,
    DecodeResult,
    FixedIterations,
    SyndromeStopping,
    decode_frames,
)
from repro.decode.batched import BatchedNormalizedMinSumDecoder
from repro.decode.min_sum import NormalizedMinSumDecoder
from repro.registry import get_component
from repro.utils.bits import random_bits

#: Frames in the large-batch test; the CI ``batched-kernels`` leg sets 4096.
LARGE_BATCH = int(os.environ.get("REPRO_BATCHED_TEST_BATCH", "256"))

#: SNR operating points: hopeless (almost nothing converges), the waterfall
#: region (mixed convergence) and high SNR (everything converges quickly).
EBN0S = [1.0, 4.0, 7.0]

RATE = 14 / 16  # scaled CCSDS twin


def noisy_llrs(encoder, n_frames, ebn0_db, rng):
    """Channel LLRs of ``n_frames`` random encoded frames at one Eb/N0."""
    info = random_bits((n_frames, encoder.dimension), rng)
    codewords = encoder.encode(info)
    sigma = ebn0_to_sigma(ebn0_db, RATE)
    symbols = BPSKModulator().modulate(codewords)
    received = symbols + rng.normal(0.0, sigma, size=symbols.shape)
    return codewords, channel_llrs(received, sigma)


def serial_per_frame(decoder, llrs) -> DecodeResult:
    """The reference result: one ``decode`` call per frame, stacked."""
    return DecodeResult.stack(
        [decoder.decode(llrs[index]) for index in range(llrs.shape[0])]
    )


def assert_results_identical(got: DecodeResult, want: DecodeResult):
    np.testing.assert_array_equal(got.bits, want.bits)
    np.testing.assert_array_equal(got.iterations, want.iterations)
    np.testing.assert_array_equal(got.converged, want.converged)
    # Bit-identical floats, not almost-equal: the kernels are shared.
    np.testing.assert_array_equal(got.posterior_llrs, want.posterior_llrs)


def build_pair(kind: str, code, max_iterations: int):
    """(batched decoder, serial reference decoder) for one registry kind."""
    batched = get_component("decoder", kind).build(code, max_iterations=max_iterations)
    serial = get_component("decoder", SERIAL_EQUIVALENTS[kind]).build(
        code, max_iterations=max_iterations
    )
    return batched, serial


class TestDifferentialBattery:
    """One batched ``decode_batch`` call vs a serial per-frame loop."""

    @pytest.mark.parametrize("ebn0_db", EBN0S)
    @pytest.mark.parametrize("kind", sorted(SERIAL_EQUIVALENTS))
    def test_batched_matches_serial_per_frame(
        self, scaled_code, scaled_encoder, kind, ebn0_db, rng
    ):
        _, llrs = noisy_llrs(scaled_encoder, 33, ebn0_db, rng)
        batched, serial = build_pair(kind, scaled_code, 8)
        assert_results_identical(
            batched.decode_batch(llrs), serial_per_frame(serial, llrs)
        )

    @pytest.mark.parametrize("max_iterations", [1, 3])
    @pytest.mark.parametrize("kind", sorted(SERIAL_EQUIVALENTS))
    def test_iteration_caps(self, scaled_code, scaled_encoder, kind, max_iterations, rng):
        """Tight caps exercise the forced flush of still-active frames."""
        _, llrs = noisy_llrs(scaled_encoder, 16, 3.0, rng)
        batched, serial = build_pair(kind, scaled_code, max_iterations)
        assert_results_identical(
            batched.decode_batch(llrs), serial_per_frame(serial, llrs)
        )

    @pytest.mark.parametrize("kind", sorted(SERIAL_EQUIVALENTS))
    def test_batch_size_one(self, scaled_code, scaled_encoder, kind, rng):
        _, llrs = noisy_llrs(scaled_encoder, 1, 3.0, rng)
        batched, serial = build_pair(kind, scaled_code, 8)
        assert_results_identical(
            batched.decode_batch(llrs), serial_per_frame(serial, llrs)
        )

    @pytest.mark.parametrize("kind", sorted(SERIAL_EQUIVALENTS))
    def test_ragged_chunking_is_invisible(self, scaled_code, scaled_encoder, kind, rng):
        """Splitting 33 frames as 8+8+8+8+1 equals the single 33-frame call.

        This is the campaign situation: the final batch of a shard is
        usually ragged, and the stored counts must not depend on it.
        """
        _, llrs = noisy_llrs(scaled_encoder, 33, 4.0, rng)
        batched, _ = build_pair(kind, scaled_code, 8)
        whole = batched.decode_batch(llrs)
        chunked = DecodeResult.stack(
            [batched.decode_batch(llrs[start : start + 8])
             for start in range(0, 33, 8)]
        )
        assert_results_identical(chunked, whole)

    @pytest.mark.parametrize("kind", sorted(SERIAL_EQUIVALENTS))
    def test_all_converged_mask(self, scaled_code, scaled_encoder, kind, rng):
        """Codeword-in batch: every frame stops at iteration 0."""
        info = random_bits((5, scaled_encoder.dimension), rng)
        codewords = scaled_encoder.encode(info)
        llrs = 8.0 * (1.0 - 2.0 * codewords.astype(np.float64))
        batched, serial = build_pair(kind, scaled_code, 8)
        got = batched.decode_batch(llrs)
        assert_results_identical(got, serial_per_frame(serial, llrs))
        assert got.converged.all()
        assert np.array_equal(got.iterations, np.zeros(5, dtype=np.int64))
        np.testing.assert_array_equal(got.bits, codewords)

    @pytest.mark.parametrize("kind", sorted(SERIAL_EQUIVALENTS))
    def test_none_converged_mask(self, scaled_code, scaled_encoder, kind, rng):
        """Hopeless SNR with a tight cap: nothing converges, all frames
        run the full budget and are flushed by the final iteration."""
        _, llrs = noisy_llrs(scaled_encoder, 8, -2.0, rng)
        batched, serial = build_pair(kind, scaled_code, 2)
        got = batched.decode_batch(llrs)
        assert_results_identical(got, serial_per_frame(serial, llrs))
        assert not got.converged.any()
        assert np.array_equal(got.iterations, np.full(8, 2, dtype=np.int64))

    def test_large_batch_matches_serial(self, scaled_code, scaled_encoder, rng):
        """The headline path at scale (4096 frames on the CI leg).

        The serial side uses the pinned full-array reference loop via
        ``decode_frames`` fallback; its equality to the per-frame loop is
        covered above, which keeps this test affordable at batch 4096.
        """
        _, llrs = noisy_llrs(scaled_encoder, LARGE_BATCH, 4.0, rng)
        batched = BatchedNormalizedMinSumDecoder(scaled_code, max_iterations=8)
        serial = NormalizedMinSumDecoder(scaled_code, max_iterations=8)
        assert_results_identical(
            batched.decode_batch(llrs), serial.decode_batch(llrs)
        )

    @pytest.mark.parametrize("kind", sorted(SERIAL_EQUIVALENTS))
    def test_decode_frames_dispatches_to_decode_batch(
        self, scaled_code, scaled_encoder, kind, rng
    ):
        _, llrs = noisy_llrs(scaled_encoder, 6, 4.0, rng)
        batched, serial = build_pair(kind, scaled_code, 8)
        assert_results_identical(
            decode_frames(batched, llrs), serial_per_frame(serial, llrs)
        )


class TestStoppingRules:
    """Batched early termination honours every stopping criterion exactly."""

    def test_fixed_iterations_never_terminates_early(
        self, scaled_code, scaled_encoder, rng
    ):
        info = random_bits((4, scaled_encoder.dimension), rng)
        codewords = scaled_encoder.encode(info)
        llrs = 8.0 * (1.0 - 2.0 * codewords.astype(np.float64))
        batched = BatchedNormalizedMinSumDecoder(
            scaled_code, max_iterations=5, stopping=FixedIterations()
        )
        serial = NormalizedMinSumDecoder(
            scaled_code, max_iterations=5, stopping=FixedIterations()
        )
        got = batched.decode_batch(llrs)
        assert_results_identical(got, serial_per_frame(serial, llrs))
        assert np.array_equal(got.iterations, np.full(4, 5, dtype=np.int64))
        assert got.converged.all()

    def test_min_iterations_blocks_iteration_zero_stop(
        self, scaled_code, scaled_encoder, rng
    ):
        info = random_bits((4, scaled_encoder.dimension), rng)
        codewords = scaled_encoder.encode(info)
        llrs = 8.0 * (1.0 - 2.0 * codewords.astype(np.float64))
        stopping = SyndromeStopping(min_iterations=2)
        batched = BatchedNormalizedMinSumDecoder(
            scaled_code, max_iterations=5, stopping=stopping
        )
        serial = NormalizedMinSumDecoder(
            scaled_code, max_iterations=5, stopping=stopping
        )
        got = batched.decode_batch(llrs)
        assert_results_identical(got, serial_per_frame(serial, llrs))
        assert np.array_equal(got.iterations, np.full(4, 2, dtype=np.int64))

    def test_mixed_stopping_at_waterfall(self, scaled_code, scaled_encoder, rng):
        """A mixed-convergence batch under min_iterations still matches."""
        _, llrs = noisy_llrs(scaled_encoder, 24, 4.0, rng)
        stopping = SyndromeStopping(min_iterations=3)
        batched = BatchedNormalizedMinSumDecoder(
            scaled_code, max_iterations=10, stopping=stopping
        )
        serial = NormalizedMinSumDecoder(
            scaled_code, max_iterations=10, stopping=stopping
        )
        assert_results_identical(
            batched.decode_batch(llrs), serial_per_frame(serial, llrs)
        )


class TestIterationConvention:
    """Regression pins for the executed-iterations accounting convention.

    ``iterations`` counts message-passing (or flipping) iterations actually
    executed: the syndrome of the raw channel hard decisions is evaluated
    at *iteration 0*, so a frame whose received word is already a codeword
    records 0 under syndrome stopping — identically in the serial and
    batched paths.
    """

    def test_codeword_in_records_zero_iterations(self, scaled_code, scaled_encoder, rng):
        info = random_bits(scaled_encoder.dimension, rng)
        codeword = scaled_encoder.encode(info)
        llrs = 8.0 * (1.0 - 2.0 * codeword.astype(np.float64))
        result = NormalizedMinSumDecoder(scaled_code, max_iterations=8).decode(llrs)
        assert bool(result.converged)
        assert int(result.iterations) == 0
        # The posterior of an iteration-0 stop is the channel LLRs.
        np.testing.assert_array_equal(result.posterior_llrs, llrs)

    def test_fixed_iterations_ignores_iteration_zero(
        self, scaled_code, scaled_encoder, rng
    ):
        info = random_bits(scaled_encoder.dimension, rng)
        codeword = scaled_encoder.encode(info)
        llrs = 8.0 * (1.0 - 2.0 * codeword.astype(np.float64))
        result = NormalizedMinSumDecoder(
            scaled_code, max_iterations=6, stopping=FixedIterations()
        ).decode(llrs)
        assert int(result.iterations) == 6

    def test_serial_and_batched_agree_on_the_convention(
        self, scaled_code, scaled_encoder, rng
    ):
        _, llrs = noisy_llrs(scaled_encoder, 12, 6.5, rng)
        batched, serial = build_pair("nms-batched", scaled_code, 8)
        got = batched.decode_batch(llrs)
        want = serial_per_frame(serial, llrs)
        np.testing.assert_array_equal(got.iterations, want.iterations)
        # High SNR: at least one frame should be clean straight off the
        # channel, otherwise this test is not exercising iteration 0.
        assert (got.iterations == 0).any()


class TestDecodeResultStack:
    def test_stack_roundtrip(self, scaled_code, scaled_encoder, rng):
        _, llrs = noisy_llrs(scaled_encoder, 3, 4.0, rng)
        serial = NormalizedMinSumDecoder(scaled_code, max_iterations=4)
        stacked = serial_per_frame(serial, llrs)
        assert stacked.bits.shape == llrs.shape
        assert stacked.iterations.shape == (3,)
        assert stacked.converged.dtype == bool
        assert stacked.iterations.dtype == np.int64

    def test_stack_empty_rejected(self):
        with pytest.raises(ValueError):
            DecodeResult.stack([])
