"""Unit tests for repro.channel.modulation and repro.channel.awgn."""

import numpy as np
import pytest

from repro.channel.awgn import (
    AWGNChannel,
    ebn0_to_esn0,
    ebn0_to_sigma,
    esn0_to_sigma,
    sigma_to_ebn0,
)
from repro.channel.modulation import BPSKModulator


class TestBPSK:
    def test_mapping_convention(self):
        mod = BPSKModulator()
        assert mod.modulate([0, 1]).tolist() == [1.0, -1.0]

    def test_amplitude(self):
        mod = BPSKModulator(amplitude=2.0)
        assert mod.modulate([0]).tolist() == [2.0]
        assert mod.symbol_energy == 4.0

    def test_invalid_amplitude(self):
        with pytest.raises(ValueError):
            BPSKModulator(amplitude=0.0)

    def test_hard_demodulation_roundtrip(self, rng):
        mod = BPSKModulator()
        bits = rng.integers(0, 2, size=100, dtype=np.uint8)
        assert np.array_equal(mod.demodulate_hard(mod.modulate(bits)), bits)

    def test_non_binary_rejected(self):
        with pytest.raises(ValueError):
            BPSKModulator().modulate([0, 2])


class TestConversions:
    def test_esn0_accounts_for_rate(self):
        assert ebn0_to_esn0(4.0, 1.0) == pytest.approx(4.0)
        assert ebn0_to_esn0(4.0, 0.5) == pytest.approx(4.0 - 3.0103, abs=1e-3)

    def test_sigma_decreases_with_snr(self):
        assert ebn0_to_sigma(6.0, 0.875) < ebn0_to_sigma(2.0, 0.875)

    def test_known_value(self):
        # At Es/N0 = 0 dB and unit energy: sigma = sqrt(1/2).
        assert esn0_to_sigma(0.0) == pytest.approx(np.sqrt(0.5))

    def test_roundtrip(self):
        sigma = ebn0_to_sigma(3.7, 0.875)
        assert sigma_to_ebn0(sigma, 0.875) == pytest.approx(3.7)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            ebn0_to_sigma(3.0, 0.0)


class TestAWGNChannel:
    def test_noise_statistics(self):
        channel = AWGNChannel(sigma=0.5, rng=0)
        symbols = np.zeros(200_000)
        received = channel.transmit(symbols)
        assert np.mean(received) == pytest.approx(0.0, abs=5e-3)
        assert np.std(received) == pytest.approx(0.5, abs=5e-3)

    def test_seed_reproducibility(self):
        a = AWGNChannel(0.3, rng=11).transmit(np.ones(10))
        b = AWGNChannel(0.3, rng=11).transmit(np.ones(10))
        assert np.array_equal(a, b)

    def test_from_ebn0(self):
        channel = AWGNChannel.from_ebn0(4.0, 0.875, rng=0)
        assert channel.sigma == pytest.approx(ebn0_to_sigma(4.0, 0.875))
        assert channel.noise_variance == pytest.approx(channel.sigma**2)

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            AWGNChannel(0.0)

    def test_shape_preserved(self, rng):
        channel = AWGNChannel(1.0, rng=rng)
        assert channel.transmit(np.zeros((3, 5))).shape == (3, 5)
