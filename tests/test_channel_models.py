"""Tests for the registered channel models and the injectable pipeline."""

import math

import numpy as np
import pytest

from repro.channel.llr import channel_llrs
from repro.channel.models import (
    AWGNChannelModel,
    BSCChannelModel,
    RayleighBlockFadingChannelModel,
)
from repro.channel.modulation import BPSKModulator
from repro.channel.pipeline import ChannelPipeline, default_pipeline
from repro.sim import EbN0Sweep, MonteCarloSimulator, SimulationConfig
from repro.sim.campaign import ChannelSpec


TINY_CONFIG = SimulationConfig(
    max_frames=20, target_frame_errors=4, batch_frames=10, all_zero_codeword=True
)


def _bits(rng, shape):
    return rng.integers(0, 2, size=shape, dtype=np.uint8)


class TestAWGNModel:
    def test_matches_historical_inline_implementation_bitwise(self):
        """The registered model must replay the pre-registry RNG draws exactly."""
        bits = _bits(np.random.default_rng(0), (4, 62))
        modulator = BPSKModulator()
        sigma = 0.8
        legacy_rng = np.random.default_rng(42)
        symbols = modulator.modulate(bits)
        received = symbols + legacy_rng.normal(0.0, sigma, size=symbols.shape)
        legacy = channel_llrs(received, sigma)
        modern = default_pipeline().llrs(bits, sigma, np.random.default_rng(42))
        assert np.array_equal(legacy, modern)

    def test_amplitude_propagates_from_modulator(self):
        bits = np.zeros((1, 8), dtype=np.uint8)
        pipeline = ChannelPipeline(BPSKModulator(amplitude=2.0), AWGNChannelModel())
        assert pipeline.amplitude == 2.0
        llrs = pipeline.llrs(bits, 1.0, np.random.default_rng(1))
        # Same noise realization scaled by A both at the transmitter (symbol
        # +A) and in the LLR map (factor 2A/sigma^2).
        noise = np.random.default_rng(1).normal(0.0, 1.0, size=(1, 8))
        assert np.allclose(llrs, 2.0 * 2.0 * (2.0 + noise))


class TestBSCModel:
    def test_default_crossover_is_q_function_of_sigma(self):
        model = BSCChannelModel()
        sigma = 0.5
        expected = 0.5 * math.erfc(1.0 / (sigma * math.sqrt(2.0)))
        assert model.crossover_probability(sigma) == pytest.approx(expected)

    def test_fixed_crossover_ignores_sigma(self):
        model = BSCChannelModel(crossover=0.1)
        assert model.crossover_probability(0.1) == 0.1
        assert model.crossover_probability(10.0) == 0.1

    def test_llrs_are_two_level_with_correct_magnitude(self):
        model = BSCChannelModel(crossover=0.2)
        bits = _bits(np.random.default_rng(3), (3, 50))
        symbols = BPSKModulator().modulate(bits)
        llrs = model.llrs(symbols, 1.0, np.random.default_rng(7))
        magnitude = math.log(0.8 / 0.2)
        assert set(np.round(np.unique(np.abs(llrs)), 12)) == {round(magnitude, 12)}
        # Unflipped positions carry the transmitted sign.
        flips = np.random.default_rng(7).random(size=symbols.shape) < 0.2
        expected_sign = np.where(bits == 0, 1.0, -1.0) * np.where(flips, -1.0, 1.0)
        assert np.array_equal(np.sign(llrs), expected_sign)

    def test_crossover_validation(self):
        with pytest.raises(ValueError, match="crossover"):
            BSCChannelModel(crossover=0.0)
        with pytest.raises(ValueError, match="crossover"):
            BSCChannelModel(crossover=0.6)

    def test_deterministic_given_seed(self):
        model = BSCChannelModel()
        symbols = BPSKModulator().modulate(_bits(np.random.default_rng(0), (2, 31)))
        a = model.llrs(symbols, 0.7, np.random.default_rng(5))
        b = model.llrs(symbols, 0.7, np.random.default_rng(5))
        assert np.array_equal(a, b)


class TestRayleighModel:
    def test_block_structure_of_fades(self):
        """Within one fading block the gain is constant; across blocks it varies."""
        model = RayleighBlockFadingChannelModel(block_length=4)
        symbols = np.ones((1, 12))
        sigma = 1e-9  # essentially noiseless: llrs ∝ h^2
        llrs = model.llrs(symbols, sigma, np.random.default_rng(11))
        gains = np.sqrt(llrs * sigma**2 / 2.0)
        blocks = gains.reshape(3, 4)
        for block in blocks:
            assert np.allclose(block, block[0])
        assert len({round(b[0], 9) for b in blocks}) == 3

    def test_whole_frame_fade_by_default(self):
        model = RayleighBlockFadingChannelModel()
        llrs = model.llrs(np.ones((2, 9)), 1e-9, np.random.default_rng(2))
        for row in llrs:
            assert np.allclose(row, row[0])
        assert not np.isclose(llrs[0, 0], llrs[1, 0])

    def test_unit_average_energy(self):
        model = RayleighBlockFadingChannelModel(block_length=1)
        fades = np.random.default_rng(0).rayleigh(
            scale=math.sqrt(0.5), size=(1, 200000)
        )
        assert np.mean(fades**2) == pytest.approx(1.0, rel=1e-2)

    def test_block_length_validation(self):
        with pytest.raises(ValueError, match="block_length"):
            RayleighBlockFadingChannelModel(block_length=0)

    def test_shape_preserved_for_single_frame(self):
        model = RayleighBlockFadingChannelModel(block_length=3)
        out = model.llrs(np.ones(10), 0.5, np.random.default_rng(1))
        assert out.shape == (10,)


class TestPipelineInjection:
    def test_simulator_accepts_pipeline(self, scaled_code):
        from repro.decode import NormalizedMinSumDecoder

        pipeline = ChannelSpec(kind="bsc").build()
        simulator = MonteCarloSimulator(
            scaled_code,
            NormalizedMinSumDecoder(scaled_code, max_iterations=8),
            config=TINY_CONFIG,
            rng=0,
            pipeline=pipeline,
        )
        point = simulator.run_point(4.0, rng=np.random.SeedSequence(1))
        assert point.frames > 0
        # Hard decisions lose ~2 dB: at the same Eb/N0 the BSC link cannot
        # beat the soft AWGN one (statistically safe at these counts).
        soft = MonteCarloSimulator(
            scaled_code,
            NormalizedMinSumDecoder(scaled_code, max_iterations=8),
            config=TINY_CONFIG,
            rng=0,
        ).run_point(4.0, rng=np.random.SeedSequence(1))
        assert point.ber >= soft.ber

    @pytest.mark.parametrize("kind,params", [
        ("bsc", {}),
        ("rayleigh", {"block_length": 16}),
    ])
    def test_sweep_serial_matches_parallel_per_channel(
        self, scaled_code, kind, params
    ):
        """The determinism contract holds on every registered channel."""
        from repro.sim.campaign import DecoderSpec

        def run(workers):
            sweep = EbN0Sweep(
                scaled_code,
                DecoderSpec("nms", 8).factory(scaled_code),
                config=TINY_CONFIG,
                rng=123,
                pipeline=ChannelSpec(kind=kind, params=params).build(),
            )
            return sweep.run([3.0, 5.0], workers=workers)

        serial = run(None)
        pooled = run(2)
        assert serial.points == pooled.points

    def test_pipeline_is_picklable(self):
        import pickle

        for kind in ("awgn", "bsc", "rayleigh"):
            pipeline = ChannelSpec(kind=kind).build()
            rebuilt = pickle.loads(pickle.dumps(pipeline))
            assert type(rebuilt.channel) is type(pipeline.channel)

    def test_shortened_code_goes_through_pipeline(self, scaled_code):
        """The virtual-fill path feeds the pipeline transmitted frames only."""
        from repro.codes.shortening import ShortenedCode
        from repro.decode import NormalizedMinSumDecoder

        shortened = ShortenedCode(scaled_code, info_bits=scaled_code.dimension - 8)
        simulator = MonteCarloSimulator(
            shortened,
            NormalizedMinSumDecoder(scaled_code, max_iterations=8),
            config=TINY_CONFIG,
            rng=0,
            pipeline=ChannelSpec(kind="bsc").build(),
        )
        point = simulator.run_point(4.0, rng=np.random.SeedSequence(9))
        assert point.bits == point.frames * shortened.transmitted_code_bits


class TestAmplitudeEnergyAccounting:
    def test_nonunit_amplitude_keeps_the_ebn0_axis_honest(self, scaled_code):
        """Es = A^2 must enter the sigma derivation, not act as free gain.

        With the energy accounted, BPSK at amplitude A over AWGN is the *same*
        operating point as unit-amplitude BPSK — numpy's ``normal(0, sigma)``
        scales one standard-normal draw, so the received LLRs (and therefore
        every count) are bit-identical, not merely statistically close.
        """
        from repro.decode import NormalizedMinSumDecoder
        from repro.sim.campaign import ChannelSpec

        def run(amplitude):
            params = {"amplitude": amplitude} if amplitude != 1.0 else {}
            simulator = MonteCarloSimulator(
                scaled_code,
                NormalizedMinSumDecoder(scaled_code, max_iterations=8),
                config=TINY_CONFIG,
                rng=0,
                pipeline=ChannelSpec(kind="awgn", modulator_params=params).build(),
            )
            assert simulator.sigma_for(3.0) == pytest.approx(
                amplitude * MonteCarloSimulator(
                    scaled_code,
                    NormalizedMinSumDecoder(scaled_code, max_iterations=8),
                    config=TINY_CONFIG,
                ).sigma_for(3.0)
            )
            return simulator.run_point(3.0, rng=np.random.SeedSequence(4))

        assert run(2.0) == run(1.0)
