"""Unit tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import main
from repro.io.alist import read_alist
from repro.io.circulant_table import load_circulant_spec


class TestInfo:
    def test_scaled_code_summary(self, capsys):
        assert main(["info", "--circulant", "31"]) == 0
        out = capsys.readouterr().out
        assert "(496," in out            # scaled code length 16 * 31
        assert "Table 1" in out

    def test_deepspace_summary(self, capsys):
        assert main(["info", "--deepspace", "1/2", "--circulant", "32"]) == 0
        out = capsys.readouterr().out
        assert "(160," in out


class TestBuildCode:
    def test_writes_alist_and_spec(self, tmp_path, capsys):
        alist_path = tmp_path / "code.alist"
        spec_path = tmp_path / "code.json"
        code_result = main([
            "build-code", "--circulant", "31",
            "--alist", str(alist_path), "--spec", str(spec_path),
        ])
        assert code_result == 0
        pcm = read_alist(alist_path)
        assert pcm.block_length == 16 * 31
        spec = load_circulant_spec(spec_path)
        assert spec.circulant_size == 31
        assert json.loads(spec_path.read_text())["circulant_size"] == 31

    def test_requires_an_output(self, capsys):
        assert main(["build-code", "--circulant", "31"]) == 2


class TestThroughput:
    def test_default_table(self, capsys):
        assert main(["throughput"]) == 0
        out = capsys.readouterr().out
        assert "130 Mbps" in out
        assert "1038 Mbps" in out

    def test_custom_iterations_and_clock(self, capsys):
        assert main(["throughput", "--iterations", "20", "--clock", "100"]) == 0
        out = capsys.readouterr().out
        assert "100 MHz" in out


class TestResources:
    def test_low_cost_default_device(self, capsys):
        assert main(["resources", "--config", "low-cost"]) == 0
        out = capsys.readouterr().out
        assert "Cyclone II" in out
        assert "Memory breakdown" in out

    def test_high_speed_named_device(self, capsys):
        assert main(["resources", "--config", "high-speed", "--device", "EP2S180"]) == 0
        assert "Stratix II" in capsys.readouterr().out

    def test_unknown_device(self, capsys):
        assert main(["resources", "--device", "no-such-fpga"]) == 2


class TestSimulate:
    def test_quick_sweep(self, tmp_path, capsys):
        save_path = tmp_path / "curve.json"
        result = main([
            "simulate", "--circulant", "31", "--ebn0", "4.0",
            "--frames", "30", "--errors", "30", "--batch", "30",
            "--iterations", "8", "--save", str(save_path),
        ])
        assert result == 0
        out = capsys.readouterr().out
        assert "BER / PER vs Eb/N0" in out
        data = json.loads(save_path.read_text())
        assert data["label"] == "nms"
        assert len(data["points"]) == 1

    def test_decoder_choices(self, capsys):
        result = main([
            "simulate", "--circulant", "31", "--decoder", "min-sum",
            "--ebn0", "5.0", "--frames", "20", "--errors", "20", "--batch", "20",
            "--iterations", "5",
        ])
        assert result == 0

    def test_random_data_path(self, capsys):
        result = main([
            "simulate", "--circulant", "31", "--random-data",
            "--ebn0", "6.0", "--frames", "10", "--errors", "10", "--batch", "10",
            "--iterations", "5",
        ])
        assert result == 0

    def test_resume_skips_completed_points_and_updates_file(self, tmp_path, capsys):
        """--resume: kill-and-rerun completes to the uninterrupted counts."""
        curve_path = tmp_path / "curve.json"
        base = [
            "simulate", "--circulant", "31", "--frames", "30", "--errors", "30",
            "--batch", "10", "--iterations", "5", "--seed", "9",
        ]
        # Uninterrupted reference over the full grid.
        full_path = tmp_path / "full.json"
        assert main(base + ["--ebn0", "3.0", "5.0", "--save", str(full_path)]) == 0
        # "Interrupted" run measured only the first grid point...
        assert main(base + ["--ebn0", "3.0", "--save", str(curve_path)]) == 0
        capsys.readouterr()
        # ...resuming the full grid skips it and writes back in place.
        assert main(base + ["--ebn0", "3.0", "5.0", "--resume", str(curve_path)]) == 0
        out = capsys.readouterr().out
        assert "skipping 1 completed point(s)" in out
        resumed = json.loads(curve_path.read_text())
        assert resumed["points"] == json.loads(full_path.read_text())["points"]

    def test_resume_refuses_a_different_channel_or_decoder(self, tmp_path, capsys):
        """A curve must not silently mix measurements from different links."""
        curve_path = tmp_path / "curve.json"
        base = [
            "simulate", "--circulant", "31", "--frames", "20", "--errors", "20",
            "--batch", "10", "--iterations", "5", "--seed", "9",
        ]
        assert main(base + ["--ebn0", "4.0", "--save", str(curve_path)]) == 0
        # The saved curve carries its identity metadata.
        metadata = json.loads(curve_path.read_text())["metadata"]
        assert metadata == {"code": "ccsds-c2-c31", "decoder": "nms",
                            "iterations": 5, "channel": "awgn", "seed": 9}
        capsys.readouterr()
        assert main(base + ["--ebn0", "5.0", "--channel", "bsc",
                            "--resume", str(curve_path)]) == 2
        err = capsys.readouterr().err
        assert "different configuration" in err and "bsc" in err
        assert main(base + ["--ebn0", "5.0", "--decoder", "min-sum",
                            "--resume", str(curve_path)]) == 2
        assert "min-sum" in capsys.readouterr().err
        # A different code, iteration budget or seed is refused too.
        mismatches = (
            ["--circulant", "63"], ["--iterations", "8"], ["--seed", "10"],
        )
        for override in mismatches:
            args = base.copy()
            for flag, value in zip(override[::2], override[1::2]):
                args[args.index(flag) + 1] = value
            assert main(args + ["--ebn0", "5.0", "--resume", str(curve_path)]) == 2
            assert "different configuration" in capsys.readouterr().err
        # Matching identity (and legacy curves without metadata) still resume.
        assert main(base + ["--ebn0", "4.0", "5.0",
                            "--resume", str(curve_path)]) == 0
        legacy = json.loads(curve_path.read_text())
        legacy["metadata"] = {}
        curve_path.write_text(json.dumps(legacy))
        capsys.readouterr()
        assert main(base + ["--ebn0", "5.0", "--channel", "bsc",
                            "--resume", str(curve_path)]) == 0

    def test_channel_option_changes_the_link(self, capsys):
        """--channel is a registered axis; hard decisions cannot beat soft."""

        def ber(channel):
            assert main([
                "simulate", "--circulant", "31", "--channel", channel,
                "--ebn0", "4.0", "--frames", "30", "--errors", "30",
                "--batch", "10", "--iterations", "8", "--seed", "11",
            ]) == 0
            out = capsys.readouterr().out
            row = [l for l in out.splitlines() if l.startswith("4.00")][-1]
            return float(row.split("|")[1])

        assert ber("bsc") >= ber("awgn")

    def test_resume_with_missing_file_starts_fresh(self, tmp_path, capsys):
        curve_path = tmp_path / "new.json"
        result = main([
            "simulate", "--circulant", "31", "--ebn0", "4.0",
            "--frames", "20", "--errors", "20", "--batch", "10",
            "--iterations", "5", "--resume", str(curve_path),
        ])
        assert result == 0
        assert len(json.loads(curve_path.read_text())["points"]) == 1

    def test_workers_and_adaptive_batch(self, capsys):
        """--workers shards the sweep over a pool; same seed, same counts."""
        args = [
            "simulate", "--circulant", "31", "--ebn0", "4.0",
            "--frames", "20", "--errors", "20", "--batch", "5",
            "--iterations", "5", "--adaptive-batch", "--seed", "3",
        ]
        assert main(args) == 0
        serial_out = capsys.readouterr().out
        assert main(args + ["--workers", "2"]) == 0
        parallel_out = capsys.readouterr().out
        serial_rows = [l for l in serial_out.splitlines() if l.startswith("Eb/N0")]
        parallel_rows = [l for l in parallel_out.splitlines() if l.startswith("Eb/N0")]
        assert serial_rows == parallel_rows
