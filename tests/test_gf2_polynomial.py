"""Unit tests for repro.gf2.polynomial."""

import numpy as np
import pytest

from repro.gf2.polynomial import (
    poly_add,
    poly_degree,
    poly_divmod,
    poly_gcd,
    poly_inverse_mod_xn1,
    poly_mod,
    poly_mul,
    poly_mul_mod_xn1,
    poly_trim,
)


class TestBasics:
    def test_trim(self):
        assert poly_trim([1, 0, 1, 0, 0]).tolist() == [1, 0, 1]
        assert poly_trim([0, 0]).tolist() == [0]

    def test_degree(self):
        assert poly_degree([1, 0, 1]) == 2
        assert poly_degree([0]) == -1
        assert poly_degree([1]) == 0

    def test_add_is_xor(self):
        # (1 + x) + (x + x^2) = 1 + x^2
        assert poly_add([1, 1], [0, 1, 1]).tolist() == [1, 0, 1]

    def test_add_self_is_zero(self):
        assert poly_degree(poly_add([1, 0, 1], [1, 0, 1])) == -1

    def test_mul(self):
        # (1 + x)^2 = 1 + x^2 over GF(2)
        assert poly_mul([1, 1], [1, 1]).tolist() == [1, 0, 1]

    def test_mul_by_zero(self):
        assert poly_degree(poly_mul([1, 1], [0])) == -1


class TestDivision:
    def test_divmod_identity(self, rng):
        for _ in range(20):
            a = rng.integers(0, 2, size=rng.integers(1, 12), dtype=np.uint8)
            b = rng.integers(0, 2, size=rng.integers(1, 8), dtype=np.uint8)
            if poly_degree(b) < 0:
                continue
            q, r = poly_divmod(a, b)
            reconstructed = poly_add(poly_mul(q, b), r)
            assert np.array_equal(poly_trim(reconstructed), poly_trim(a))
            assert poly_degree(r) < poly_degree(b) or poly_degree(r) < 0

    def test_divide_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            poly_divmod([1, 1], [0])

    def test_mod(self):
        # x^2 mod (x^2 + 1) = 1
        assert poly_mod([0, 0, 1], [1, 0, 1]).tolist() == [1]


class TestGcd:
    def test_gcd_of_multiples(self):
        # gcd((1+x)*(1+x+x^2), (1+x)) = (1+x)
        a = poly_mul([1, 1], [1, 1, 1])
        assert poly_gcd(a, [1, 1]).tolist() == [1, 1]

    def test_gcd_coprime(self):
        assert poly_degree(poly_gcd([1, 1], [1, 1, 1])) == 0


class TestModXn1:
    def test_cyclic_wraparound(self):
        # x^2 * x^2 = x^4 = x (mod x^3 - 1)
        assert poly_mul_mod_xn1([0, 0, 1], [0, 0, 1], 3).tolist() == [0, 1, 0]

    def test_identity_element(self):
        result = poly_mul_mod_xn1([1], [0, 1, 1, 0, 1], 5)
        assert result.tolist() == [0, 1, 1, 0, 1]

    def test_inverse_roundtrip(self):
        # x is invertible mod x^7 - 1 with inverse x^6.
        inverse = poly_inverse_mod_xn1([0, 1], 7)
        assert inverse is not None
        product = poly_mul_mod_xn1([0, 1], inverse, 7)
        assert product.tolist() == [1, 0, 0, 0, 0, 0, 0]

    def test_non_invertible(self):
        # 1 + x divides x^2 - 1, so it is not invertible mod x^2 - 1.
        assert poly_inverse_mod_xn1([1, 1], 2) is None

    def test_random_inverse_roundtrip(self, rng):
        n = 15
        found = 0
        for _ in range(30):
            poly = rng.integers(0, 2, size=n, dtype=np.uint8)
            inverse = poly_inverse_mod_xn1(poly, n)
            if inverse is None:
                continue
            found += 1
            product = poly_mul_mod_xn1(poly, inverse, n)
            expected = np.zeros(n, dtype=np.uint8)
            expected[0] = 1
            assert np.array_equal(product, expected)
        assert found > 0

    def test_invalid_modulus_size(self):
        with pytest.raises(ValueError):
            poly_mul_mod_xn1([1], [1], 0)
