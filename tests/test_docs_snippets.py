"""Guard the documentation code snippets against rot.

Full *execution* of the fenced python blocks happens in the CI ``docs``
job (``tools/run_doc_snippets.py``); these tests are the cheap tier-1
subset: the documents exist, contain runnable python blocks, and every
block at least compiles.  A snippet that stops compiling fails here in
seconds instead of only in the docs job.
"""

import importlib.util
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = [
    REPO_ROOT / "README.md",
    REPO_ROOT / "docs" / "campaigns.md",
    REPO_ROOT / "docs" / "fabric.md",
    REPO_ROOT / "docs" / "components.md",
    REPO_ROOT / "docs" / "observability.md",
    REPO_ROOT / "docs" / "reporting.md",
]


def _load_runner():
    path = REPO_ROOT / "tools" / "run_doc_snippets.py"
    spec = importlib.util.spec_from_file_location("run_doc_snippets", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def runner():
    return _load_runner()


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_docs_exist_and_have_python_blocks(runner, doc):
    assert doc.exists(), f"{doc} is missing"
    blocks = runner.python_blocks(doc.read_text())
    assert blocks, f"{doc} has no runnable python blocks"


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_doc_snippets_compile(runner, doc):
    """Every block compiles — including ``noexec`` ones, which may import
    optional dependencies at runtime but must never rot syntactically."""
    blocks = runner.all_python_blocks(doc.read_text())
    for index, (line, source, _noexec) in enumerate(blocks, 1):
        compile(source, f"{doc.name}:block{index}(line {line})", "exec")


def test_extractor_ignores_other_fences(runner):
    markdown = (
        "```bash\nnot python\n```\n"
        "```python\nx = 1\n```\n"
        "```json\n{\"a\": 1}\n```\n"
        "```python\ny = x + 1\n```\n"
    )
    blocks = runner.python_blocks(markdown)
    assert [source for _, source in blocks] == ["x = 1\n", "y = x + 1\n"]


def test_noexec_marker_skips_execution_but_still_compiles(runner, tmp_path):
    markdown = (
        "```python\nran = True\n```\n"
        "```python noexec\nimport does_not_exist_anywhere\n```\n"
        "```python skip\nalso_skipped = True\n```\n"
        "```pythonic\nnot a python block at all\n```\n"
    )
    blocks = runner.all_python_blocks(markdown)
    assert [(source, noexec) for _, source, noexec in blocks] == [
        ("ran = True\n", False),
        ("import does_not_exist_anywhere\n", True),
        ("also_skipped = True\n", True),
    ]
    # python_blocks (the executable view) excludes the skipped ones.
    assert [source for _, source in runner.python_blocks(markdown)] == ["ran = True\n"]
    # run_file executes only the first block; the unimportable noexec block
    # is compiled, not imported — the run succeeds and counts one snippet.
    doc = tmp_path / "doc.md"
    doc.write_text(markdown)
    assert runner.run_file(doc) == 1


def test_noexec_block_with_syntax_error_still_fails(runner, tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text("```python noexec\ndef broken(:\n```\n")
    with pytest.raises(SyntaxError):
        runner.run_file(doc)


def test_noexec_marker_allows_trailing_commentary(runner):
    markdown = "```python noexec (needs matplotlib)\nimport matplotlib\n```\n"
    [(_, source, noexec)] = runner.all_python_blocks(markdown)
    assert noexec and source == "import matplotlib\n"


def test_unknown_python_marker_fails_loudly(runner):
    # A typo must not silently drop the block from execution *and*
    # compilation — that would let the snippet rot unchecked.
    with pytest.raises(ValueError, match="unrecognized python block"):
        runner.all_python_blocks("```python noexc\nx = 1\n```\n")


def test_reporting_doc_marks_matplotlib_blocks_noexec(runner):
    """docs/reporting.md shows figure code without requiring matplotlib."""
    text = (REPO_ROOT / "docs" / "reporting.md").read_text()
    blocks = runner.all_python_blocks(text)
    noexec_sources = [source for _, source, noexec in blocks if noexec]
    assert noexec_sources, "reporting.md should demonstrate matplotlib blocks"
    for _, source, noexec in blocks:
        if "waterfall_figure" in source or "save_report_figures" in source:
            assert noexec, "matplotlib-dependent snippets must be noexec"


def test_readme_documents_every_cli_subcommand():
    """The README's CLI reference must cover the parser's real surface."""
    from repro.cli import build_parser

    readme = (REPO_ROOT / "README.md").read_text()
    parser = build_parser()
    subparsers = next(
        a for a in parser._actions  # noqa: SLF001 - argparse has no public API
        if a.__class__.__name__ == "_SubParsersAction"
    )
    for command in subparsers.choices:
        assert command in readme, f"README does not mention subcommand {command!r}"
    for campaign_command in ("run", "status", "resume", "trace", "report", "verify"):
        assert f"campaign {campaign_command}" in readme
    for components_command in ("list", "describe"):
        assert f"components {components_command}" in readme
