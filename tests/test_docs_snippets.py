"""Guard the documentation code snippets against rot.

Full *execution* of the fenced python blocks happens in the CI ``docs``
job (``tools/run_doc_snippets.py``); these tests are the cheap tier-1
subset: the documents exist, contain runnable python blocks, and every
block at least compiles.  A snippet that stops compiling fails here in
seconds instead of only in the docs job.
"""

import importlib.util
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = [REPO_ROOT / "README.md", REPO_ROOT / "docs" / "campaigns.md"]


def _load_runner():
    path = REPO_ROOT / "tools" / "run_doc_snippets.py"
    spec = importlib.util.spec_from_file_location("run_doc_snippets", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def runner():
    return _load_runner()


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_docs_exist_and_have_python_blocks(runner, doc):
    assert doc.exists(), f"{doc} is missing"
    blocks = runner.python_blocks(doc.read_text())
    assert blocks, f"{doc} has no runnable python blocks"


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_doc_snippets_compile(runner, doc):
    for index, (line, source) in enumerate(runner.python_blocks(doc.read_text()), 1):
        compile(source, f"{doc.name}:block{index}(line {line})", "exec")


def test_extractor_ignores_other_fences(runner):
    markdown = (
        "```bash\nnot python\n```\n"
        "```python\nx = 1\n```\n"
        "```json\n{\"a\": 1}\n```\n"
        "```python\ny = x + 1\n```\n"
    )
    blocks = runner.python_blocks(markdown)
    assert [source for _, source in blocks] == ["x = 1\n", "y = x + 1\n"]


def test_readme_documents_every_cli_subcommand():
    """The README's CLI reference must cover the parser's real surface."""
    from repro.cli import build_parser

    readme = (REPO_ROOT / "README.md").read_text()
    parser = build_parser()
    subparsers = next(
        a for a in parser._actions  # noqa: SLF001 - argparse has no public API
        if a.__class__.__name__ == "_SubParsersAction"
    )
    for command in subparsers.choices:
        assert command in readme, f"README does not mention subcommand {command!r}"
    for campaign_command in ("run", "status", "resume", "report"):
        assert f"campaign {campaign_command}" in readme
